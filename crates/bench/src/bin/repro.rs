//! `repro` — regenerate every experiment table (DESIGN.md §4).
//!
//! ```text
//! repro all                      # every experiment, in order
//! repro dmmpc mot                # selected experiments
//! repro --experiment throughput  # flag form of the same selection
//! repro --seed 7 all             # override the seed
//! repro --scheme hp-2dmot sweep  # restrict zoo sweeps to one scheme
//! repro --faults 0.1 --scheme hp-dmmpc
//!                                # E14 at one fault fraction, full report
//! repro --faults 0.25 --fault-mode adversarial faults
//! repro --threads 4 throughput   # parallel sweep driver (E15)
//! repro --quick --experiment throughput --baseline BENCH_throughput.json
//!                                # CI perf smoke: small sweep + 3x guard
//! repro --json-out out.json all  # collect every emitted JSON row
//! repro --list                   # list experiment ids and scheme names
//! ```
//!
//! Serving subcommands (must be the first argument; the E16 *experiment*
//! is still reachable as `--experiment serve` or via `all`):
//!
//! ```text
//! repro serve --addr 127.0.0.1:7077 --shards 4
//!                                # boot the TCP session service
//! repro loadgen --addr 127.0.0.1:7077 --sessions 1024 --conns 8
//!                                # drive a running server, report p99
//! repro loadgen --quick --json-out load.json
//!                                # CI-sized run, JSON row collected
//! repro metrics --addr 127.0.0.1:7077
//!                                # scrape the server's Prometheus text
//! repro events --addr 127.0.0.1:7077 --sid 3 --out events.jsonl
//!                                # dump the structured trace-event ring
//! repro verify --addr 127.0.0.1:7077 [--sid 3]
//!                                # scrape a PRAM-consistency verdict
//! repro lint                     # workspace invariant lint (DESIGN.md §9)
//! repro lint -D --json findings.json
//!                                # CI form: warnings fail, findings dumped
//! repro sim --seed 7 --chaos     # deterministic whole-service simulation
//! repro sim --sweep 32 --chaos   # CI chaos sweep; failures dump a replay
//! repro sim --seed 7 --repeat 2  # determinism check: fingerprints equal
//! ```

use cr_core::SchemeKind;
use cr_faults::Placement;
use pram_bench::loadgen::{self, LoadgenConfig};
use pram_bench::{registry, scheme_list_lines, throughput, RunCtx};

/// Count heap allocations so E15 can report `allocs/step` — the perf
/// trajectory's "is the data plane still flat?" column.
#[global_allocator]
static ALLOC: metrics::counting::CountingAlloc = metrics::counting::CountingAlloc;

fn usage(reg: &[(&str, &str, pram_bench::Runner)]) {
    eprintln!(
        "usage: repro [--seed S] [--scheme NAME]... [--faults F] \
         [--fault-mode random|adversarial] [--threads N] [--quick] \
         [--experiment ID]... [--json-out PATH] [--baseline PATH] [--list] \
         <experiment|all>...\n\
       repro serve [--addr HOST:PORT] [--shards N]\n\
       repro loadgen [--addr HOST:PORT] [--sessions K] [--conns T] \
         [--steps S] [--batch B] [--pipeline W] [--scheme NAME] [--seed S] \
         [--faults F] [--quick] [--json-out PATH]\n\
       repro metrics [--addr HOST:PORT] [--out PATH]\n\
       repro events [--addr HOST:PORT] [--sid SID] [--out PATH]\n\
       repro verify [--addr HOST:PORT] [--sid SID] [--out PATH]\n\
       repro lint [--root PATH] [-D] [--json PATH] [--rules]\n\
       repro sim [--seed S] [--chaos] [--shards N] [--sessions K] \
         [--steps S] [--scheme NAME] [--sweep N] [--repeat N] \
         [--json-out PATH]"
    );
    eprintln!("  --threads N    parallel sweep driver: E15 measures its");
    eprintln!("                 (scheme, n) points on N scoped threads;");
    eprintln!("                 sweep points are seed-isolated, so all");
    eprintln!("                 deterministic counters are unaffected");
    eprintln!("  --quick        CI-sized sweep subset");
    eprintln!("  --json-out P   write every emitted JSON row to P");
    eprintln!("  --baseline P   compare E15 steps/sec against the checked-in");
    eprintln!("                 JSON at P; exit 1 on a >3x regression");
    eprintln!("experiments:");
    for (id, desc, _) in reg {
        eprintln!("  {id:<12} {desc}");
    }
}

/// `repro serve`: boot the sharded TCP session service and block.
fn cmd_serve(args: &[String]) -> ! {
    let mut addr = "127.0.0.1:7077".to_string();
    let mut shards = 4usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                i += 1;
                addr = args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--addr needs host:port");
                    std::process::exit(2);
                });
            }
            "--shards" => {
                i += 1;
                shards = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&s| s >= 1)
                    .unwrap_or_else(|| {
                        eprintln!("--shards needs a positive integer");
                        std::process::exit(2);
                    });
            }
            other => {
                eprintln!("repro serve: unknown flag {other} (--addr, --shards)");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let service = cr_serve::Service::start(cr_serve::ServiceConfig::with_shards(shards))
        .expect("spawn shard workers");
    let server = cr_serve::tcp::Server::bind(&addr, service.handle()).unwrap_or_else(|e| {
        eprintln!("cannot bind {addr}: {e}");
        std::process::exit(2);
    });
    println!(
        "cr-serve listening on {} shards={shards}",
        server.local_addr()
    );
    // Serve until killed.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

/// `repro metrics` / `repro events`: scrape a running server's
/// observability surface (`METRICS` → Prometheus text, `EVENTS [sid]` →
/// JSONL) and print or save the payload.
fn cmd_scrape(verb: &str, args: &[String]) -> ! {
    let mut addr = "127.0.0.1:7077".to_string();
    let mut sid: Option<String> = None;
    let mut out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let mut take = |what: &str| -> String {
            i += 1;
            args.get(i).cloned().unwrap_or_else(|| {
                eprintln!("{flag} needs {what}");
                std::process::exit(2);
            })
        };
        match flag {
            "--addr" => addr = take("host:port"),
            "--sid" if verb == "events" => {
                let v = take("a session id");
                if v.parse::<u64>().is_err() {
                    eprintln!("--sid needs a u64");
                    std::process::exit(2);
                }
                sid = Some(v);
            }
            "--out" => out = Some(take("a path")),
            other => {
                eprintln!(
                    "repro {verb}: unknown flag {other} (--addr{}, --out)",
                    if verb == "events" { ", --sid" } else { "" }
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let command = match (verb, &sid) {
        ("metrics", _) => "METRICS".to_string(),
        (_, Some(s)) => format!("EVENTS {s}"),
        (_, None) => "EVENTS".to_string(),
    };
    let (header, payload) = loadgen::scrape(&addr, &command).unwrap_or_else(|e| {
        eprintln!("repro {verb}: {e}");
        std::process::exit(1);
    });
    let body = payload.join("\n");
    if let Some(path) = out {
        let trailing = if body.is_empty() { "" } else { "\n" };
        std::fs::write(&path, format!("{body}{trailing}")).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        });
        eprintln!("wrote {} line(s) to {path}", payload.len());
    } else {
        println!("{body}");
    }
    eprintln!("{header}");
    std::process::exit(0);
}

/// `repro verify`: scrape a running server's PRAM-consistency verdict
/// (`VERIFY` for the service-wide summary, `VERIFY <sid>` for one
/// session's full report — violation details included). The reply is a
/// single `OK ...` line; a scrape that cannot parse as one exits 1, so
/// CI can gate on both the verdict and the framing.
fn cmd_verify(args: &[String]) -> ! {
    let mut addr = "127.0.0.1:7077".to_string();
    let mut sid: Option<String> = None;
    let mut out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let mut take = |what: &str| -> String {
            i += 1;
            args.get(i).cloned().unwrap_or_else(|| {
                eprintln!("{flag} needs {what}");
                std::process::exit(2);
            })
        };
        match flag {
            "--addr" => addr = take("host:port"),
            "--sid" => {
                let v = take("a session id");
                if v.parse::<u64>().is_err() {
                    eprintln!("--sid needs a u64");
                    std::process::exit(2);
                }
                sid = Some(v);
            }
            "--out" => out = Some(take("a path")),
            other => {
                eprintln!("repro verify: unknown flag {other} (--addr, --sid, --out)");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let command = match &sid {
        Some(s) => format!("VERIFY {s}"),
        None => "VERIFY".to_string(),
    };
    let reply = loadgen::scrape_line(&addr, &command).unwrap_or_else(|e| {
        eprintln!("repro verify: {e}");
        std::process::exit(1);
    });
    if let Some(path) = out {
        std::fs::write(&path, format!("{reply}\n")).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        });
        eprintln!("wrote verdict to {path}");
    }
    println!("{reply}");
    // The exit code mirrors the verdict so scripts need no parsing:
    // 0 = consistent (or a zero-violation summary), 1 = violation.
    let violated = reply.contains("verdict=violation")
        || loadgen::reply_field(&reply, "violations").is_some_and(|v| v != "0");
    std::process::exit(i32::from(violated));
}

/// `repro lint`: run the workspace invariant linter (same engine as the
/// standalone `cr-lint` binary) against this checkout.
fn cmd_lint(args: &[String]) -> ! {
    let mut deny_warnings = false;
    let mut json_out: Option<String> = None;
    let mut root: Option<std::path::PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "-D" | "--deny-warnings" => deny_warnings = true,
            "--json" => {
                i += 1;
                json_out = Some(args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--json needs a path");
                    std::process::exit(2);
                }));
            }
            "--root" => {
                i += 1;
                root = Some(std::path::PathBuf::from(
                    args.get(i).cloned().unwrap_or_else(|| {
                        eprintln!("--root needs a path");
                        std::process::exit(2);
                    }),
                ));
            }
            "--rules" => {
                for (id, desc) in cr_lint::RULES {
                    println!("{id:<16} {desc}");
                }
                std::process::exit(0);
            }
            other => {
                eprintln!("repro lint: unknown flag {other} (--root, -D, --json, --rules)");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let root = root
        .or_else(|| cr_lint::find_root(&std::env::current_dir().unwrap_or_default()))
        .unwrap_or_else(|| {
            eprintln!("repro lint: not inside the workspace (try --root PATH)");
            std::process::exit(2);
        });
    let findings = cr_lint::lint_workspace(&root).unwrap_or_else(|e| {
        eprintln!("repro lint: {e}");
        std::process::exit(2);
    });
    if let Some(path) = json_out {
        if let Err(e) = std::fs::write(&path, cr_lint::to_json(&findings)) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        }
    }
    print!("{}", cr_lint::render(&findings));
    let errors = findings.iter().filter(|f| !f.warning).count();
    let warnings = findings.len() - errors;
    if findings.is_empty() {
        println!("repro lint: workspace invariants hold (0 findings)");
    } else {
        println!("repro lint: {errors} error(s), {warnings} warning(s)");
    }
    if errors > 0 || (deny_warnings && warnings > 0) {
        std::process::exit(1);
    }
    std::process::exit(0);
}

/// `repro sim`: deterministic whole-service simulation (DESIGN.md §13).
/// One seed pins every client frame, sweep tick, and chaos draw, so a
/// failing seed is replayed — never chased. `--sweep N` runs N
/// consecutive seeds (the CI chaos job); a failing run dumps its merged
/// event log to `sim-fail-<seed>.events.jsonl` and prints the replay
/// command. `--repeat N` runs one seed N times and demands identical
/// fingerprints.
fn cmd_sim(args: &[String]) -> ! {
    let mut cfg = cr_sim::SimConfig::default();
    let mut sweep = 1u64;
    let mut repeat = 1u64;
    let mut json_out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let mut take = |what: &str| -> String {
            i += 1;
            args.get(i).cloned().unwrap_or_else(|| {
                eprintln!("{flag} needs {what}");
                std::process::exit(2);
            })
        };
        let parse_count = |flag: &str, raw: String| -> u64 {
            raw.parse().ok().filter(|&v| v > 0).unwrap_or_else(|| {
                eprintln!("{flag} needs a positive integer");
                std::process::exit(2);
            })
        };
        match flag {
            "--seed" => {
                cfg.seed = take("a u64").parse().unwrap_or_else(|_| {
                    eprintln!("--seed needs a u64");
                    std::process::exit(2);
                })
            }
            "--chaos" => cfg.chaos = true,
            "--shards" => cfg.shards = parse_count(flag, take("a count")) as usize,
            "--sessions" => cfg.clients = parse_count(flag, take("a count")) as usize,
            "--steps" => cfg.steps = parse_count(flag, take("a count")),
            "--scheme" => {
                let name = take("a scheme name");
                if name.parse::<SchemeKind>().is_err() {
                    eprintln!("--scheme: unknown scheme {name}");
                    std::process::exit(2);
                }
                cfg.scheme = name;
            }
            "--sweep" => sweep = parse_count(flag, take("a count")),
            "--repeat" => repeat = parse_count(flag, take("a count")),
            "--json-out" => json_out = Some(take("a path")),
            other => {
                eprintln!(
                    "repro sim: unknown flag {other} (--seed, --chaos, --shards, \
                     --sessions, --steps, --scheme, --sweep, --repeat, --json-out)"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let mut rows: Vec<String> = Vec::new();
    let mut failed: Vec<u64> = Vec::new();
    for offset in 0..sweep {
        let mut run_cfg = cfg.clone();
        run_cfg.seed = cfg.seed + offset;
        let report = cr_sim::run(&run_cfg);
        if sweep == 1 && repeat == 1 {
            println!("{}", report.render());
        } else {
            println!(
                "seed={} ok={} completed={} lost={} crashes={} queue_full={} \
                 malformed={} evicted={} fingerprint={:016x}",
                report.seed,
                report.ok(),
                report.completed,
                report.lost,
                report.tally.crashes,
                report.tally.queue_full,
                report.tally.malformed_rejected,
                report.evicted,
                report.fingerprint(),
            );
        }
        rows.push(report.to_json());
        if !report.ok() {
            failed.push(report.seed);
            let dump = format!("sim-fail-{}.events.jsonl", report.seed);
            if let Err(e) = std::fs::write(&dump, &report.events_jsonl) {
                eprintln!("cannot write {dump}: {e}");
            } else {
                eprintln!("event log dumped to {dump}");
            }
            if sweep > 1 {
                eprintln!("{}", report.render());
            }
            eprintln!(
                "replay: repro sim --seed {}{} --shards {} --sessions {} --steps {}",
                report.seed,
                if run_cfg.chaos { " --chaos" } else { "" },
                run_cfg.shards,
                run_cfg.clients,
                run_cfg.steps,
            );
        }
        // `--repeat`: the same seed again, demanding the same bytes.
        for rep in 1..repeat {
            let again = cr_sim::run(&run_cfg);
            if again.fingerprint() != report.fingerprint()
                || again.events_jsonl != report.events_jsonl
            {
                failed.push(report.seed);
                eprintln!(
                    "DETERMINISM BROKEN: seed {} run {} fingerprint {:016x} != {:016x}",
                    report.seed,
                    rep + 1,
                    again.fingerprint(),
                    report.fingerprint(),
                );
            } else {
                println!(
                    "seed={} repeat {}/{}: fingerprint {:016x} reproduced",
                    report.seed,
                    rep + 1,
                    repeat,
                    report.fingerprint(),
                );
            }
        }
    }
    if let Some(path) = json_out {
        let mut body = rows.join("\n");
        body.push('\n');
        std::fs::write(&path, body).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        });
        eprintln!("wrote {} json row(s) to {path}", rows.len());
    }
    if failed.is_empty() {
        if sweep > 1 {
            println!("repro sim: {sweep} seed(s) ok");
        }
        std::process::exit(0);
    }
    failed.dedup();
    eprintln!("repro sim: {} failing seed(s): {failed:?}", failed.len());
    std::process::exit(1);
}

/// `repro loadgen`: drive a running server, print and optionally collect
/// the JSON row (shares `--quick` / `--json-out` with the experiments).
fn cmd_loadgen(args: &[String]) -> ! {
    // `--quick` applies the CI-sized defaults *first*, so explicit
    // flags always win regardless of where `--quick` sits on the line.
    let mut cfg = if args.iter().any(|a| a == "--quick") {
        LoadgenConfig::default().quick()
    } else {
        LoadgenConfig::default()
    };
    let mut json_out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let mut take = |what: &str| -> String {
            i += 1;
            args.get(i).cloned().unwrap_or_else(|| {
                eprintln!("{flag} needs {what}");
                std::process::exit(2);
            })
        };
        match flag {
            "--addr" => cfg.addr = take("host:port"),
            "--sessions" => {
                cfg.sessions = take("a count").parse().unwrap_or_else(|_| {
                    eprintln!("--sessions needs a positive integer");
                    std::process::exit(2);
                })
            }
            "--conns" => {
                cfg.conns = take("a count").parse().unwrap_or_else(|_| {
                    eprintln!("--conns needs a positive integer");
                    std::process::exit(2);
                })
            }
            "--steps" => {
                cfg.steps = take("a count").parse().unwrap_or_else(|_| {
                    eprintln!("--steps needs a positive integer");
                    std::process::exit(2);
                })
            }
            "--batch" => {
                cfg.batch = take("a count").parse().unwrap_or_else(|_| {
                    eprintln!("--batch needs a positive integer");
                    std::process::exit(2);
                })
            }
            "--pipeline" => {
                cfg.pipeline = take("a window size").parse().unwrap_or_else(|_| {
                    eprintln!("--pipeline needs a positive integer");
                    std::process::exit(2);
                })
            }
            "--scheme" => {
                cfg.scheme = take("a scheme name").parse().unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(2);
                })
            }
            "--seed" => {
                cfg.seed = take("a u64").parse().unwrap_or_else(|_| {
                    eprintln!("--seed needs a u64");
                    std::process::exit(2);
                })
            }
            "--faults" => {
                cfg.faults = take("a fraction in [0, 1]")
                    .parse()
                    .ok()
                    .filter(|f| (0.0..=1.0).contains(f))
                    .unwrap_or_else(|| {
                        eprintln!("--faults needs a fraction in [0, 1]");
                        std::process::exit(2);
                    })
            }
            "--quick" => {} // handled in the pre-pass above
            "--json-out" => json_out = Some(take("a path")),
            other => {
                eprintln!(
                    "repro loadgen: unknown flag {other} (--addr, --sessions, \
                     --conns, --steps, --batch, --pipeline, --scheme, --seed, \
                     --faults, --quick, --json-out)"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }
    match loadgen::run(&cfg) {
        Ok(report) => {
            println!("{}", report.render());
            let row = report.to_json();
            println!("json:\n{row}");
            if let Some(path) = json_out {
                std::fs::write(&path, format!("{row}\n")).unwrap_or_else(|e| {
                    eprintln!("cannot write {path}: {e}");
                    std::process::exit(2);
                });
                eprintln!("wrote 1 json row to {path}");
            }
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("loadgen failed: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => cmd_serve(&args[1..]),
        Some("loadgen") => cmd_loadgen(&args[1..]),
        Some(verb @ ("metrics" | "events")) => cmd_scrape(verb, &args[1..]),
        Some("verify") => cmd_verify(&args[1..]),
        Some("lint") => cmd_lint(&args[1..]),
        Some("sim") => cmd_sim(&args[1..]),
        _ => {}
    }
    let mut seed = simrng::DEFAULT_SEED;
    let mut schemes: Vec<SchemeKind> = Vec::new();
    let mut wanted: Vec<String> = Vec::new();
    let mut faults: Option<f64> = None;
    let mut fault_mode = Placement::Random;
    let mut threads = 1usize;
    let mut quick = false;
    let mut json_out: Option<String> = None;
    let mut baseline: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                i += 1;
                seed = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seed needs a u64");
                    std::process::exit(2);
                });
            }
            "--scheme" => {
                i += 1;
                let name = args.get(i).cloned().unwrap_or_default();
                match name.parse::<SchemeKind>() {
                    Ok(kind) => schemes.push(kind),
                    Err(e) => {
                        eprintln!("{e}");
                        std::process::exit(2);
                    }
                }
            }
            "--faults" => {
                i += 1;
                let f = args
                    .get(i)
                    .and_then(|s| s.parse::<f64>().ok())
                    .filter(|f| (0.0..=1.0).contains(f))
                    .unwrap_or_else(|| {
                        eprintln!("--faults needs a fraction in [0, 1]");
                        std::process::exit(2);
                    });
                faults = Some(f);
            }
            "--fault-mode" => {
                i += 1;
                let name = args.get(i).cloned().unwrap_or_default();
                fault_mode = name.parse().unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(2);
                });
            }
            "--threads" => {
                i += 1;
                threads = args
                    .get(i)
                    .and_then(|s| s.parse::<usize>().ok())
                    .filter(|&t| t >= 1)
                    .unwrap_or_else(|| {
                        eprintln!("--threads needs a positive integer");
                        std::process::exit(2);
                    });
            }
            "--quick" => quick = true,
            "--experiment" => {
                i += 1;
                let id = args.get(i).cloned().unwrap_or_default();
                if id.is_empty() {
                    eprintln!("--experiment needs an experiment id (see --list)");
                    std::process::exit(2);
                }
                wanted.push(id);
            }
            "--json-out" => {
                i += 1;
                json_out = Some(args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--json-out needs a path");
                    std::process::exit(2);
                }));
            }
            "--baseline" => {
                i += 1;
                baseline = Some(args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--baseline needs a path");
                    std::process::exit(2);
                }));
            }
            "--list" => {
                println!("experiments:");
                for (id, desc, _) in registry() {
                    println!("  {id:<12} {desc}");
                }
                println!("schemes (for --scheme, repeatable):");
                for line in scheme_list_lines() {
                    println!("  {line}");
                }
                println!("fault modes (for --fault-mode): random, adversarial");
                println!("subcommands (as the first argument):");
                println!("  serve        boot the sharded TCP session service (cr-serve)");
                println!("  loadgen      drive a running server: K sessions over T conns");
                println!("  metrics      scrape a running server's Prometheus exposition");
                println!("  events       dump a running server's trace-event ring as JSONL");
                println!("  verify       scrape a running server's PRAM-consistency verdict");
                println!("  lint         workspace invariant linter (cr-lint; see --rules)");
                return;
            }
            other => wanted.push(other.to_string()),
        }
        i += 1;
    }
    // `repro --faults 0.1 --scheme hp-dmmpc` means: run the fault
    // experiment — no need to name it.
    if wanted.is_empty() && faults.is_some() {
        wanted.push("faults".to_string());
    }
    let reg = registry();
    if wanted.is_empty() {
        usage(&reg);
        std::process::exit(2);
    }

    let mut ctx = RunCtx::seeded(seed).with_threads(threads).with_quick(quick);
    if !schemes.is_empty() {
        ctx = ctx.with_schemes(schemes);
    }
    // Placement applies to the E14 sweep whether or not the fraction is
    // pinned: `repro --fault-mode adversarial faults` runs the full sweep
    // under worst-case placement.
    ctx.fault_placement = fault_mode;
    ctx.fault_fraction = faults;

    let run_all = wanted.iter().any(|w| w == "all");
    let mut matched = false;
    let mut json_rows = String::new();
    let mut guard_failed = false;
    let mut baseline_checked = false;
    for (id, desc, runner) in &reg {
        if run_all || wanted.iter().any(|w| w == id) {
            matched = true;
            println!("================================================================");
            println!("{desc}   [seed {seed}]");
            println!("================================================================");
            if *id == "throughput" {
                // Measured once; rendered, guarded, and collected from the
                // same rows so the guard judges exactly what was printed.
                let rows = throughput::rows(&ctx);
                println!("{}", throughput::render(&rows, &ctx));
                for r in &rows {
                    json_rows.push_str(&r.to_json());
                    json_rows.push('\n');
                }
                if let Some(path) = &baseline {
                    baseline_checked = true;
                    let base = std::fs::read_to_string(path).unwrap_or_else(|e| {
                        eprintln!("cannot read baseline {path}: {e}");
                        std::process::exit(2);
                    });
                    match throughput::check_baseline(&rows, &base) {
                        Ok(msg) => println!("{msg}"),
                        Err(msg) => {
                            eprintln!("{msg}");
                            guard_failed = true;
                        }
                    }
                }
            } else {
                let out = runner(&ctx);
                // Experiments emit their JSON rows inline (E14 style);
                // collect them for --json-out.
                for line in out.lines().filter(|l| l.starts_with("{\"experiment\"")) {
                    json_rows.push_str(line);
                    json_rows.push('\n');
                }
                println!("{out}");
            }
        }
    }
    if !matched {
        eprintln!("no experiment matched {wanted:?}; try --list");
        std::process::exit(2);
    }
    // A guard that silently never ran is worse than no guard: refuse
    // invocations where --baseline was passed but the throughput
    // experiment was not selected.
    if baseline.is_some() && !baseline_checked {
        eprintln!("--baseline does nothing unless the throughput experiment runs");
        std::process::exit(2);
    }
    if let Some(path) = &json_out {
        std::fs::write(path, &json_rows).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        });
        eprintln!("wrote {} json row(s) to {path}", json_rows.lines().count());
    }
    if guard_failed {
        std::process::exit(1);
    }
}
