//! `repro` — regenerate every experiment table (DESIGN.md §4).
//!
//! ```text
//! repro all                      # every experiment, in order
//! repro dmmpc mot                # selected experiments
//! repro --experiment throughput  # flag form of the same selection
//! repro --seed 7 all             # override the seed
//! repro --scheme hp-2dmot sweep  # restrict zoo sweeps to one scheme
//! repro --faults 0.1 --scheme hp-dmmpc
//!                                # E14 at one fault fraction, full report
//! repro --faults 0.25 --fault-mode adversarial faults
//! repro --threads 4 throughput   # parallel sweep driver (E15)
//! repro --quick --experiment throughput --baseline BENCH_throughput.json
//!                                # CI perf smoke: small sweep + 3x guard
//! repro --json-out out.json all  # collect every emitted JSON row
//! repro --list                   # list experiment ids and scheme names
//! ```

use cr_core::SchemeKind;
use cr_faults::Placement;
use pram_bench::{registry, scheme_list_lines, throughput, RunCtx};

/// Count heap allocations so E15 can report `allocs/step` — the perf
/// trajectory's "is the data plane still flat?" column.
#[global_allocator]
static ALLOC: metrics::counting::CountingAlloc = metrics::counting::CountingAlloc;

fn usage(reg: &[(&str, &str, pram_bench::Runner)]) {
    eprintln!(
        "usage: repro [--seed S] [--scheme NAME]... [--faults F] \
         [--fault-mode random|adversarial] [--threads N] [--quick] \
         [--experiment ID]... [--json-out PATH] [--baseline PATH] [--list] \
         <experiment|all>..."
    );
    eprintln!("  --threads N    parallel sweep driver: E15 measures its");
    eprintln!("                 (scheme, n) points on N scoped threads;");
    eprintln!("                 sweep points are seed-isolated, so all");
    eprintln!("                 deterministic counters are unaffected");
    eprintln!("  --quick        CI-sized sweep subset");
    eprintln!("  --json-out P   write every emitted JSON row to P");
    eprintln!("  --baseline P   compare E15 steps/sec against the checked-in");
    eprintln!("                 JSON at P; exit 1 on a >3x regression");
    eprintln!("experiments:");
    for (id, desc, _) in reg {
        eprintln!("  {id:<12} {desc}");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed = simrng::DEFAULT_SEED;
    let mut schemes: Vec<SchemeKind> = Vec::new();
    let mut wanted: Vec<String> = Vec::new();
    let mut faults: Option<f64> = None;
    let mut fault_mode = Placement::Random;
    let mut threads = 1usize;
    let mut quick = false;
    let mut json_out: Option<String> = None;
    let mut baseline: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                i += 1;
                seed = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seed needs a u64");
                    std::process::exit(2);
                });
            }
            "--scheme" => {
                i += 1;
                let name = args.get(i).cloned().unwrap_or_default();
                match name.parse::<SchemeKind>() {
                    Ok(kind) => schemes.push(kind),
                    Err(e) => {
                        eprintln!("{e}");
                        std::process::exit(2);
                    }
                }
            }
            "--faults" => {
                i += 1;
                let f = args
                    .get(i)
                    .and_then(|s| s.parse::<f64>().ok())
                    .filter(|f| (0.0..=1.0).contains(f))
                    .unwrap_or_else(|| {
                        eprintln!("--faults needs a fraction in [0, 1]");
                        std::process::exit(2);
                    });
                faults = Some(f);
            }
            "--fault-mode" => {
                i += 1;
                let name = args.get(i).cloned().unwrap_or_default();
                fault_mode = name.parse().unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(2);
                });
            }
            "--threads" => {
                i += 1;
                threads = args
                    .get(i)
                    .and_then(|s| s.parse::<usize>().ok())
                    .filter(|&t| t >= 1)
                    .unwrap_or_else(|| {
                        eprintln!("--threads needs a positive integer");
                        std::process::exit(2);
                    });
            }
            "--quick" => quick = true,
            "--experiment" => {
                i += 1;
                let id = args.get(i).cloned().unwrap_or_default();
                if id.is_empty() {
                    eprintln!("--experiment needs an experiment id (see --list)");
                    std::process::exit(2);
                }
                wanted.push(id);
            }
            "--json-out" => {
                i += 1;
                json_out = Some(args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--json-out needs a path");
                    std::process::exit(2);
                }));
            }
            "--baseline" => {
                i += 1;
                baseline = Some(args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--baseline needs a path");
                    std::process::exit(2);
                }));
            }
            "--list" => {
                println!("experiments:");
                for (id, desc, _) in registry() {
                    println!("  {id:<12} {desc}");
                }
                println!("schemes (for --scheme, repeatable):");
                for line in scheme_list_lines() {
                    println!("  {line}");
                }
                println!("fault modes (for --fault-mode): random, adversarial");
                return;
            }
            other => wanted.push(other.to_string()),
        }
        i += 1;
    }
    // `repro --faults 0.1 --scheme hp-dmmpc` means: run the fault
    // experiment — no need to name it.
    if wanted.is_empty() && faults.is_some() {
        wanted.push("faults".to_string());
    }
    let reg = registry();
    if wanted.is_empty() {
        usage(&reg);
        std::process::exit(2);
    }

    let mut ctx = RunCtx::seeded(seed).with_threads(threads).with_quick(quick);
    if !schemes.is_empty() {
        ctx = ctx.with_schemes(schemes);
    }
    // Placement applies to the E14 sweep whether or not the fraction is
    // pinned: `repro --fault-mode adversarial faults` runs the full sweep
    // under worst-case placement.
    ctx.fault_placement = fault_mode;
    ctx.fault_fraction = faults;

    let run_all = wanted.iter().any(|w| w == "all");
    let mut matched = false;
    let mut json_rows = String::new();
    let mut guard_failed = false;
    let mut baseline_checked = false;
    for (id, desc, runner) in &reg {
        if run_all || wanted.iter().any(|w| w == id) {
            matched = true;
            println!("================================================================");
            println!("{desc}   [seed {seed}]");
            println!("================================================================");
            if *id == "throughput" {
                // Measured once; rendered, guarded, and collected from the
                // same rows so the guard judges exactly what was printed.
                let rows = throughput::rows(&ctx);
                println!("{}", throughput::render(&rows, &ctx));
                for r in &rows {
                    json_rows.push_str(&r.to_json());
                    json_rows.push('\n');
                }
                if let Some(path) = &baseline {
                    baseline_checked = true;
                    let base = std::fs::read_to_string(path).unwrap_or_else(|e| {
                        eprintln!("cannot read baseline {path}: {e}");
                        std::process::exit(2);
                    });
                    match throughput::check_baseline(&rows, &base) {
                        Ok(msg) => println!("{msg}"),
                        Err(msg) => {
                            eprintln!("{msg}");
                            guard_failed = true;
                        }
                    }
                }
            } else {
                let out = runner(&ctx);
                // Experiments emit their JSON rows inline (E14 style);
                // collect them for --json-out.
                for line in out.lines().filter(|l| l.starts_with("{\"experiment\"")) {
                    json_rows.push_str(line);
                    json_rows.push('\n');
                }
                println!("{out}");
            }
        }
    }
    if !matched {
        eprintln!("no experiment matched {wanted:?}; try --list");
        std::process::exit(2);
    }
    // A guard that silently never ran is worse than no guard: refuse
    // invocations where --baseline was passed but the throughput
    // experiment was not selected.
    if baseline.is_some() && !baseline_checked {
        eprintln!("--baseline does nothing unless the throughput experiment runs");
        std::process::exit(2);
    }
    if let Some(path) = &json_out {
        std::fs::write(path, &json_rows).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        });
        eprintln!("wrote {} json row(s) to {path}", json_rows.lines().count());
    }
    if guard_failed {
        std::process::exit(1);
    }
}
