//! The experiment implementations. See DESIGN.md §4 for the index.
//!
//! Every experiment takes a [`RunCtx`]; the zoo-sweeping ones (`sweep`,
//! `programs`) construct their schemes through [`cr_core::SimBuilder`] and
//! honor [`RunCtx::schemes`].

use crate::RunCtx;
use metrics::{fit_polylog, fnum, Summary, Table};
use pram_machine::SharedMemory;
use simrng::{rng_from_seed, Rng};

/// Shared helper: run `steps` uniform access steps against a scheme and
/// collect per-step phase/cycle samples.
pub fn drive_uniform(
    mem: &mut dyn SharedMemory,
    n: usize,
    m: usize,
    steps: usize,
    seed: u64,
) -> (Vec<u64>, Vec<u64>) {
    let mut rng = rng_from_seed(seed);
    let mut phases = Vec::with_capacity(steps);
    let mut cycles = Vec::with_capacity(steps);
    for _ in 0..steps {
        let p = workloads::uniform(n, m, 0.3, &mut rng);
        let res = mem.access(&p.reads, &p.writes);
        phases.push(res.cost.phases);
        cycles.push(res.cost.cycles);
    }
    (phases, cycles)
}

/// E1 — machine model constructors and invariants (Figs. 1, 2, 3, 5, 6).
pub mod model_zoo {
    use super::*;
    use models::{BdnModel, DmbdnModel, DmmpcModel, MachineModel, MpcModel, PramModel};

    /// Render the model table.
    pub fn run(_ctx: &RunCtx) -> String {
        let n = 64;
        let m = 4096;
        let mods: Vec<Box<dyn MachineModel>> = vec![
            Box::new(PramModel { n, m }),
            Box::new(MpcModel { n, m }),
            Box::new(BdnModel { n, m, degree: 4 }),
            Box::new(DmmpcModel { n, m, modules: 512 }),
            Box::new(DmbdnModel {
                n,
                m,
                modules: 512,
                switches: 2 * 512,
                degree: 8,
            }),
        ];
        let mut t = Table::new(vec![
            "model",
            "fig",
            "procs",
            "cells",
            "modules",
            "granule",
            "max degree",
            "bounded?",
            "switches",
            "valid",
        ]);
        let figs = ["1", "2", "3", "5", "6"];
        for (model, fig) in mods.iter().zip(figs) {
            t.row(vec![
                model.name().to_string(),
                fig.to_string(),
                model.processors().to_string(),
                model.memory_cells().to_string(),
                model.modules().to_string(),
                model.granularity().to_string(),
                model.max_degree().to_string(),
                model.bounded_degree().to_string(),
                model.switch_nodes().to_string(),
                model.validate().is_ok().to_string(),
            ]);
        }
        format!(
            "E1: machine models at n={n}, m={m} (paper Figs. 1,2,3,5,6)\n{}",
            t.render()
        )
    }
}

/// E2 — expansion of random memory maps (Lemma 1 vs Lemma 2 regimes).
pub mod expansion {
    use super::*;
    use memdist::{check_sampled, min_live_spread_exhaustive, MemoryMap};

    /// Render the expansion tables.
    pub fn run(ctx: &RunCtx) -> String {
        let seed = ctx.seed;
        let mut out = String::new();

        // Ground truth on a tiny instance: exhaustive adversary.
        let tiny = MemoryMap::random(32, 16, 3, seed);
        let vars: Vec<usize> = vec![1, 9, 17];
        let exact = min_live_spread_exhaustive(&tiny, &vars, 2);
        out.push_str(&format!(
            "E2a: exhaustive ground truth (m=32, M=16, r=3, c=2, q=3): \
             min live spread = {exact}, Lemma bound (b=4) = {:.2}, holds = {}\n\n",
            3.0 * 3.0 / 4.0,
            exact as f64 >= 3.0 * 3.0 / 4.0
        ));

        // Sampled greedy adversary across granularities.
        let n = 64;
        let m = 4096;
        let mut t = Table::new(vec![
            "regime",
            "M",
            "c",
            "r",
            "q",
            "required",
            "worst spread",
            "ratio",
            "holds",
        ]);
        let mut rng = rng_from_seed(seed);
        for (regime, modules, c) in [
            ("coarse (MPC, Lemma 1)", n, 5usize),
            ("fine (DMMPC, Lemma 2)", 512, 4),
            ("finer (M=m)", 4096, 3),
        ] {
            let r = 2 * c - 1;
            let q = (n / r).max(1);
            let map = MemoryMap::random(m, modules, r, seed);
            let rep = check_sampled(&map, c, 4, q, 40, &mut rng);
            t.row(vec![
                regime.to_string(),
                modules.to_string(),
                c.to_string(),
                r.to_string(),
                q.to_string(),
                fnum(rep.required),
                rep.worst_spread.to_string(),
                fnum(rep.worst_ratio),
                rep.satisfied.to_string(),
            ]);
        }
        // Constructive (affine) map — the paper's open problem: does a
        // computable map expand like a random one? E2 measures it.
        let affine = MemoryMap::affine(m, 512, 7, seed);
        let rep = check_sampled(&affine, 4, 4, 9, 40, &mut rng);
        t.row(vec![
            "affine constructive".to_string(),
            "512".to_string(),
            "4".to_string(),
            "7".to_string(),
            "9".to_string(),
            fnum(rep.required),
            rep.worst_spread.to_string(),
            fnum(rep.worst_ratio),
            rep.satisfied.to_string(),
        ]);
        // Adversarial control: a congested map must fail.
        let bad = MemoryMap::congested(m, 512, 7);
        let rep = check_sampled(&bad, 4, 4, 9, 10, &mut rng);
        t.row(vec![
            "congested control".to_string(),
            "512".to_string(),
            "4".to_string(),
            "7".to_string(),
            "9".to_string(),
            fnum(rep.required),
            rep.worst_spread.to_string(),
            fnum(rep.worst_ratio),
            rep.satisfied.to_string(),
        ]);
        out.push_str(&format!(
            "E2b: greedy-adversary expansion on random maps (n={n}, m={m}, b=4, 40 samples)\n{}",
            t.render()
        ));
        out
    }
}

/// E3 — Theorem 1's lower bound: the granularity/redundancy cliff.
pub mod lowerbound {
    use super::*;
    use cr_core::concentration_adversary;
    use memdist::MemoryMap;

    /// Render the forced-time sweep.
    pub fn run(ctx: &RunCtx) -> String {
        let seed = ctx.seed;
        let n = 64;
        let m = 4096; // k = 2
        let mut t = Table::new(vec![
            "M",
            "eps",
            "r",
            "modules confining n vars",
            "forced time n/|S|",
            "predicted",
        ]);
        for (modules, eps) in [(64usize, "0"), (512, "0.5"), (4096, "1.0")] {
            for r in [1usize, 2, 3, 5, 7, 9] {
                let map = MemoryMap::random(m, modules, r, seed + r as u64);
                let rep = concentration_adversary(&map, n);
                t.row(vec![
                    modules.to_string(),
                    eps.to_string(),
                    r.to_string(),
                    rep.module_set.to_string(),
                    fnum(rep.forced_time),
                    fnum(rep.predicted_time),
                ]);
            }
        }
        format!(
            "E3: concentration adversary (Theorem 1), n={n}, m={m} (k=2).\n\
             Forced time ~ (n/M)*(m/n)^(1/r): polynomial on the MPC (eps=0)\n\
             unless r grows; O(1) at fine granularity with constant r.\n{}",
            t.render()
        )
    }
}

/// E4 — Theorem 2: DMMPC phases per step vs n, against the UW-MPC baseline.
pub mod dmmpc {
    use super::*;
    use cr_core::{SchemeKind, SimBuilder};

    /// Render the scaling table and fits.
    pub fn run(ctx: &RunCtx) -> String {
        let seed = ctx.seed;
        let ns = [16usize, 32, 64, 128, 256, 512];
        let steps = 5;
        let mut t = Table::new(vec![
            "n",
            "m=n^2",
            "HP r",
            "HP M",
            "HP phases/step",
            "UW r",
            "UW phases/step",
        ]);
        let mut xs = Vec::new();
        let mut hp_ys = Vec::new();
        for &n in &ns {
            let m = n * n;
            // Fixed constant c=4 (r=7) for the time curves so machines are
            // compared at equal redundancy; E9 reports the rigorous
            // formula constants.
            let modules = ::models::params::pow2_at_least(::models::params::ipow_ceil(n, 1.5));
            let mut hp = SimBuilder::new(n, m)
                .kind(SchemeKind::HpDmmpc)
                .modules(modules)
                .c(4)
                .seed(seed)
                .build()
                .expect("E4 regime is feasible");
            let (hp_phases, _) = drive_uniform(hp.as_mut(), n, m, steps, seed ^ 1);

            let mut uw = SimBuilder::new(n, m)
                .kind(SchemeKind::UwMpc)
                .build()
                .expect("coarse defaults are feasible");
            let uw_r = uw.redundancy();
            let (uw_phases, _) = drive_uniform(uw.as_mut(), n, m, steps, seed ^ 1);

            let hp_mean = Summary::of_u64(&hp_phases).mean;
            let uw_mean = Summary::of_u64(&uw_phases).mean;
            xs.push(n as f64);
            hp_ys.push(hp_mean);
            t.row(vec![
                n.to_string(),
                m.to_string(),
                format!("{:.0}", hp.redundancy()),
                modules.to_string(),
                fnum(hp_mean),
                format!("{uw_r:.0}"),
                fnum(uw_mean),
            ]);
        }
        let fit = fit_polylog(&xs, &hp_ys);
        format!(
            "E4: Theorem 2 - phases per P-RAM step on the DMMPC (uniform steps, {steps}/n).\n{}\
             \nHP phases fit a*(log2 n)^p: a={}, p={}, R2={} \
             (paper: O(log n), i.e. p ~ 1; constant redundancy)\n",
            t.render(),
            fnum(fit.a),
            fnum(fit.p),
            fnum(fit.r2)
        )
    }
}

/// E5 — Theorem 3: measured 2DMOT cycles per step vs n, HP (leaves) vs LPP
/// (roots).
pub mod motsim {
    use super::*;
    use cr_core::{Lpp2dmot, Scheme, SchemeConfig, SchemeKind, SimBuilder};

    /// Render the cycle-scaling table.
    pub fn run(ctx: &RunCtx) -> String {
        let seed = ctx.seed;
        let ns = [8usize, 16, 32, 64];
        let steps = 3;
        let mut t = Table::new(vec![
            "n",
            "m",
            "HP side",
            "HP r",
            "HP cycles/step",
            "LPP side",
            "LPP r",
            "LPP cycles/step",
        ]);
        let mut xs = Vec::new();
        let mut hp_ys = Vec::new();
        for &n in &ns {
            let m = n * n;
            // Honest Theorem 3 sizing: columns = n^1.25 (so the effective
            // module count exceeds n polynomially), constant c = 4.
            let cols = ::models::params::pow2_at_least(::models::params::ipow_ceil(n, 1.25));
            let mut hp = SimBuilder::new(n, m)
                .kind(SchemeKind::Hp2dmotLeaves)
                .modules(cols)
                .c(4)
                .seed(seed)
                .build()
                .expect("E5 regime is feasible");
            let (_, hp_cycles) = drive_uniform(hp.as_mut(), n, m, steps, seed ^ 2);
            let hp_mean = Summary::of_u64(&hp_cycles).mean;

            // Concrete construction: the scheme's own side() is the grid
            // actually routed, not a re-derivation of its formula.
            let mut lpp = Lpp2dmot::try_new(&SchemeConfig::coarse_for_pram(n, m))
                .expect("coarse defaults are feasible");
            let lpp_r = lpp.redundancy();
            let lpp_side = lpp.side();
            let (_, lpp_cycles) = drive_uniform(&mut lpp, n, m, steps, seed ^ 2);
            let lpp_mean = Summary::of_u64(&lpp_cycles).mean;

            xs.push(n as f64);
            hp_ys.push(hp_mean);
            t.row(vec![
                n.to_string(),
                m.to_string(),
                hp.modules().to_string(),
                format!("{:.0}", hp.redundancy()),
                fnum(hp_mean),
                lpp_side.to_string(),
                format!("{lpp_r:.0}"),
                fnum(lpp_mean),
            ]);
        }
        let fit = fit_polylog(&xs, &hp_ys);
        format!(
            "E5: Theorem 3 - measured network cycles per P-RAM step on the 2DMOT\n\
             (memory at leaves = HP, memory at roots = LPP; uniform steps).\n{}\
             \nHP cycles fit a*(log2 n)^p: a={}, p={}, R2={} \
             (paper: O(log^2 n / log log n), i.e. p between 1 and 2)\n\
             Same time shape for both; HP's redundancy stays constant while\n\
             LPP's grows with log m - that contrast is the paper's point (see E9).\n",
            t.render(),
            fnum(fit.a),
            fnum(fit.p),
            fnum(fit.r2)
        )
    }
}

/// E6 — Fig. 7 crossbar vs Fig. 8 memory-at-leaves hardware budgets.
pub mod crossbar {
    use super::*;
    use mot::area::{crossbar_scheme_switches, leaves_scheme_switches};

    /// Render the switch-count comparison.
    pub fn run(_ctx: &RunCtx) -> String {
        let mut t = Table::new(vec![
            "n",
            "M",
            "crossbar switches O(nM)",
            "leaves switches O(M)",
            "ratio",
        ]);
        for n in [16usize, 64, 256, 1024] {
            let modules = n * n; // M = n^2
            let side = (modules as f64).sqrt() as usize;
            let xb = crossbar_scheme_switches(n, modules);
            let lv = leaves_scheme_switches(side);
            t.row(vec![
                n.to_string(),
                modules.to_string(),
                xb.to_string(),
                lv.to_string(),
                fnum(xb as f64 / lv.max(1) as f64),
            ]);
        }
        format!(
            "E6: hardware budget, Fig. 7 (n x M crossbar 2DMOT) vs Fig. 8\n\
             (sqrt(M) x sqrt(M) 2DMOT, memory at leaves). Both reach constant\n\
             redundancy; the leaves scheme needs only O(M) switches.\n{}",
            t.render()
        )
    }
}

/// E7 — the VLSI area model (paper §3).
pub mod area {
    use super::*;
    use mot::area::leaves_scheme_area;

    /// Render the area table.
    pub fn run(_ctx: &RunCtx) -> String {
        let mut t = Table::new(vec![
            "n",
            "m",
            "side",
            "granule g",
            "simulator area",
            "P-RAM area",
            "ratio",
            "g >= log^2 side (optimal)",
        ]);
        let r = 7;
        for (n, k) in [
            (64usize, 2.0f64),
            (64, 2.5),
            (64, 3.0),
            (64, 3.5),
            (256, 2.0),
            (256, 2.5),
            (256, 3.0),
        ] {
            let m = (n as f64).powf(k) as usize;
            let side = ::models::params::pow2_at_least(::models::params::ipow_ceil(n, 1.25));
            let rep = leaves_scheme_area(m, r, side);
            t.row(vec![
                n.to_string(),
                m.to_string(),
                side.to_string(),
                rep.granule.to_string(),
                rep.simulator_area.to_string(),
                rep.pram_area.to_string(),
                rep.overhead_ratio.to_string(),
                rep.area_optimal.to_string(),
            ]);
        }
        format!(
            "E7: VLSI area (Leighton bound, unit constants). The simulator's\n\
             memory area stays within a constant of the P-RAM's own memory\n\
             exactly when the granule g = Omega(log^2 side) - paper section 3.\n{}",
            t.render()
        )
    }
}

/// E8 — the Schuster/Rabin IDA alternative.
pub mod ida_exp {
    use super::*;
    use cr_core::{SchemeKind, SimBuilder};

    /// Render the IDA comparison.
    pub fn run(ctx: &RunCtx) -> String {
        let seed = ctx.seed;
        let mut t = Table::new(vec![
            "n",
            "b",
            "d",
            "blowup d/b",
            "quorum (d+b)/2",
            "shares/step (measured)",
            "phases/step",
        ]);
        for n in [16usize, 64, 256, 1024, 4096] {
            let m = 4 * n;
            let (b, d) = ida::params_for_n(n);
            let mut s = SimBuilder::new(n, m)
                .kind(SchemeKind::Ida)
                .build()
                .expect("IDA defaults are feasible");
            let (phases, _) = drive_uniform(s.as_mut(), n.min(16), m, 5, seed ^ 3);
            let (tot, steps) = s.totals();
            t.row(vec![
                n.to_string(),
                b.to_string(),
                d.to_string(),
                fnum(d as f64 / b as f64),
                ((d + b) / 2).to_string(),
                fnum(tot.messages as f64 / steps.max(1) as f64),
                fnum(Summary::of_u64(&phases).mean),
            ]);
        }
        format!(
            "E8: Schuster's IDA scheme (Rabin dispersal). Storage blowup is a\n\
             constant (1.5x) at every scale, but each access touches\n\
             Theta(log n) shares - the trade-off the paper describes in sec. 1.\n{}",
            t.render()
        )
    }
}

/// E9 — the headline: redundancy vs n across all schemes.
pub mod redundancy {
    use super::*;
    use ::models::PaperParams;

    /// Render the redundancy comparison.
    pub fn run(_ctx: &RunCtx) -> String {
        let mut t = Table::new(vec![
            "n",
            "m=n^2",
            "UW/MPC r=2c-1 (Lemma 1)",
            "Herley-Bilardi (analytic)",
            "LPP 2DMOT (Lemma 1)",
            "HP DMMPC (Lemma 2)",
            "HP 2DMOT (Lemma 2)",
            "IDA blowup",
        ]);
        let c_hp = PaperParams::c_lemma2(2.0, 0.5, 4);
        for e in [4u32, 6, 8, 10, 12, 16, 20] {
            let n = 1usize << e;
            let m = n.saturating_mul(n);
            let c_uw = PaperParams::c_lemma1(m, 8);
            t.row(vec![
                format!("2^{e}"),
                format!("2^{}", 2 * e),
                (2 * c_uw - 1).to_string(),
                PaperParams::r_herley_bilardi(m).to_string(),
                (2 * c_uw - 1).to_string(),
                (2 * c_hp - 1).to_string(),
                (2 * c_hp - 1).to_string(),
                "1.5".to_string(),
            ]);
        }
        format!(
            "E9: redundancy required for polylog deterministic simulation\n\
             (k=2, eps=0.5, b=4; Lemma constants as derived in the papers).\n\
             The paper's claim: granularity turns Theta(log m / log log m)\n\
             into Theta(1).\n{}",
            t.render()
        )
    }
}

/// E10 — the two-stage protocol's internal structure.
pub mod stages {
    use super::*;
    use cr_core::{HpDmmpc, Scheme, SchemeKind, SimBuilder};

    /// Render stage statistics.
    pub fn run(ctx: &RunCtx) -> String {
        let seed = ctx.seed;
        let n = 256;
        let m = n * n;
        let modules = ::models::params::pow2_at_least(::models::params::ipow_ceil(n, 1.5));
        // The builder validates the regime; direct construction keeps the
        // stage-1 budget ablation below possible.
        let cfg = SimBuilder::new(n, m)
            .kind(SchemeKind::HpDmmpc)
            .modules(modules)
            .c(4)
            .seed(seed)
            .fine_config()
            .expect("E10 regime is feasible");
        let mut hp = HpDmmpc::new(&cfg);
        let r = cfg.redundancy();
        let bound = n / r;
        let mut rng = rng_from_seed(seed ^ 4);
        let mut t = Table::new(vec![
            "step",
            "requests",
            "stage1 phases",
            "stage1 leftover",
            "bound n/(2c-1)",
            "stage2 phases",
            "killed attempts",
        ]);
        let mut ok = true;
        for step in 0..10 {
            let p = workloads::uniform(n, m, 0.3, &mut rng);
            hp.access(&p.reads, &p.writes);
            let rep = hp.last_step();
            ok &= rep.protocol.stage1_leftover <= bound;
            t.row(vec![
                step.to_string(),
                rep.requests.to_string(),
                rep.protocol.stage1_phases.to_string(),
                rep.protocol.stage1_leftover.to_string(),
                bound.to_string(),
                rep.protocol.stage2_phases.to_string(),
                rep.protocol.killed_attempts.to_string(),
            ]);
        }
        // Second machine: a deliberately tight stage-1 budget (2 phases)
        // forces leftovers into stage 2 so its machinery is visible.
        let mut tight_cfg = cfg;
        tight_cfg.stage1_phases = 2;
        let mut hp2 = HpDmmpc::new(&tight_cfg);
        let mut t2 = Table::new(vec![
            "step",
            "stage1 leftover",
            "bound",
            "stage2 phases",
            "total phases",
        ]);
        for step in 0..6 {
            let p = workloads::uniform(n, m, 0.3, &mut rng);
            hp2.access(&p.reads, &p.writes);
            let rep = hp2.last_step();
            t2.row(vec![
                step.to_string(),
                rep.protocol.stage1_leftover.to_string(),
                bound.to_string(),
                rep.protocol.stage2_phases.to_string(),
                rep.phases.to_string(),
            ]);
        }
        format!(
            "E10: two-stage protocol structure at n={n}, m={m}, r={r}.\n\
             The papers' claim: stage 1 leaves at most n/(2c-1) = {bound} live\n\
             requests. Holds on every step: {ok}.\n{}\n\
             Squeezing stage 1 to 2 phases (below its O(r log log n) budget,\n\
             so the bound no longer applies) exhibits stage 2 draining the\n\
             spill in a handful of phases:\n{}",
            t.render(),
            t2.render()
        )
    }
}

/// E11 — the probabilistic baseline: hashing congestion vs granularity.
pub mod hashing {
    use super::*;
    use cr_core::HashedDmmpc;

    /// Render the congestion table.
    ///
    /// Uses direct construction: the hash-aware adversary needs
    /// [`HashedDmmpc::module_of`], which the uniform [`cr_core::Scheme`]
    /// interface deliberately does not expose.
    pub fn run(ctx: &RunCtx) -> String {
        let seed = ctx.seed;
        let steps = 200;
        let mut t = Table::new(vec![
            "n",
            "M",
            "mean congestion",
            "max congestion",
            "adversarial congestion",
        ]);
        for n in [64usize, 256, 1024] {
            let m = n * n;
            for modules in [n, ::models::params::ipow_ceil(n, 1.5)] {
                let mut h = HashedDmmpc::new(n, m, modules, seed);
                let mut rng = rng_from_seed(seed ^ 5);
                let mut cong = Vec::new();
                for _ in 0..steps {
                    let p = workloads::uniform(n, m, 0.0, &mut rng);
                    h.access(&p.reads, &p.writes);
                    cong.push(h.last_congestion());
                }
                // Adversary who knows the hash aims everything at module 0's
                // bucket.
                let target = h.module_of(0);
                let evil: Vec<usize> = (0..m)
                    .filter(|&v| h.module_of(v) == target)
                    .take(n)
                    .collect();
                let adv = h.access(&evil, &[]).cost.phases;
                let s = Summary::of_u64(&cong);
                t.row(vec![
                    n.to_string(),
                    modules.to_string(),
                    fnum(s.mean),
                    fnum(s.max),
                    adv.to_string(),
                ]);
            }
        }
        format!(
            "E11: hashed (probabilistic) distribution, {steps} random steps.\n\
             Fine granularity shrinks expected congestion (Mehlhorn-Vishkin),\n\
             but an adversary who knows the hash still serializes a step -\n\
             the reason deterministic worst-case schemes exist.\n{}",
            t.render()
        )
    }
}

/// E12 — the 2DMOT as a compute fabric: native matrix–vector product.
pub mod matvec {
    use super::*;
    use mot::primitives;
    use mot::MotTopology;

    /// Render the matvec table.
    pub fn run(ctx: &RunCtx) -> String {
        let mut t = Table::new(vec!["side", "cycles", "2*log2(side)+1", "correct"]);
        let mut rng = rng_from_seed(ctx.seed ^ 6);
        for side in [4usize, 16, 64, 256] {
            let motn = MotTopology::new(side);
            let a: Vec<i64> = (0..side * side)
                .map(|_| (rng.below(19) as i64) - 9)
                .collect();
            let x: Vec<i64> = (0..side).map(|_| (rng.below(19) as i64) - 9).collect();
            let (y, cycles) = primitives::matvec(&motn, &a, &x);
            let correct =
                (0..side).all(|i| y[i] == (0..side).map(|j| a[i * side + j] * x[j]).sum::<i64>());
            t.row(vec![
                side.to_string(),
                cycles.to_string(),
                (2 * side.ilog2() + 1).to_string(),
                correct.to_string(),
            ]);
        }
        format!(
            "E12: the 2DMOT's original purpose (Nath et al. 1983): y = A*x in\n\
             O(log side) cycles on the tree fabric.\n{}",
            t.render()
        )
    }
}

/// E13 — one uniform workload through the whole scheme zoo, via the
/// [`cr_core::Scheme`] trait: the all-scheme sweep every later scaling
/// experiment builds on.
pub mod sweep {
    use super::*;
    use cr_core::{Scheme, SimBuilder};

    /// Render the zoo sweep.
    pub fn run(ctx: &RunCtx) -> String {
        let n = 16;
        let m = n * n;
        let steps = 4;
        let mut schemes: Vec<Box<dyn Scheme>> = Vec::new();
        for &kind in &ctx.schemes {
            match SimBuilder::new(n, m).kind(kind).seed(ctx.seed).build() {
                Ok(s) => schemes.push(s),
                Err(e) => return format!("E13: cannot build {kind}: {e}"),
            }
        }
        let mut t = Table::new(vec![
            "scheme",
            "modules",
            "redundancy",
            "phases/step",
            "cycles/step",
            "messages/step",
        ]);
        for s in &mut schemes {
            let (phases, cycles) = drive_uniform(s.as_mut(), n, m, steps, ctx.seed ^ 7);
            let (tot, nsteps) = s.totals();
            t.row(vec![
                Scheme::name(s.as_ref()).to_string(),
                s.modules().to_string(),
                fnum(s.redundancy()),
                fnum(Summary::of_u64(&phases).mean),
                fnum(Summary::of_u64(&cycles).mean),
                fnum(tot.messages as f64 / nsteps.max(1) as f64),
            ]);
        }
        format!(
            "E13: the whole zoo under one uniform workload (n={n}, m={m},\n\
             {steps} steps), driven through Box<dyn Scheme>. Redundancy is\n\
             the storage blowup; phases/cycles are each scheme's own time\n\
             model (not comparable across interconnects - see E4/E5).\n{}",
            t.render()
        )
    }
}

/// E14 — fault injection: run every scheme under module faults and
/// measure what constant redundancy actually buys.
pub mod faults {
    use super::*;
    use cr_core::{Scheme, SchemeKind};
    use cr_faults::{FaultPlan, FaultyBuilder, FaultyScheme};

    /// The default fault-fraction sweep: `f ∈ {0, 1/64, 1/32, 1/16, 1/8, 1/4}`.
    pub const FRACTIONS: [f64; 6] = [
        0.0,
        1.0 / 64.0,
        1.0 / 32.0,
        1.0 / 16.0,
        1.0 / 8.0,
        1.0 / 4.0,
    ];

    /// Per-scheme machine sizes: the routed 2DMOT schemes simulate every
    /// packet, so they run on a smaller instance (same policy as the
    /// property suite).
    fn size_for(kind: SchemeKind) -> (usize, usize) {
        match kind {
            SchemeKind::Hp2dmotLeaves | SchemeKind::Lpp2dmot => (8, 64),
            _ => (32, 1024),
        }
    }

    /// Populate all of memory through faulty access steps, then run mixed
    /// read/write steps; returns the scheme with its report filled in.
    fn run_one(
        kind: SchemeKind,
        f: f64,
        ctx: &RunCtx,
    ) -> Result<FaultyScheme, cr_core::BuildError> {
        let (n, m) = size_for(kind);
        let plan = FaultPlan::modules(f)
            .with_placement(ctx.fault_placement)
            .with_seed(ctx.seed);
        let mut s = FaultyBuilder::new(n, m)
            .kind(kind)
            .seed(ctx.seed)
            .plan(plan)
            .build()?;
        let mut rng = rng_from_seed(ctx.seed ^ 14);
        // Populate every cell in n-request write waves (writes under
        // faults: this is where hashing silently loses data).
        for base in (0..m).step_by(n) {
            let writes: Vec<(usize, i64)> = (base..(base + n).min(m))
                .map(|a| (a, (a * 37 + 11) as i64))
                .collect();
            s.access(&[], &writes);
        }
        // Mixed steps.
        for _ in 0..6 {
            let p = workloads::uniform(n, m, 0.3, &mut rng);
            s.access(&p.reads, &p.writes);
        }
        // Read-back sweep: every cell is audited once, so lost data is
        // counted even if the mixed steps missed it.
        for base in (0..m).step_by(n) {
            let reads: Vec<usize> = (base..(base + n).min(m)).collect();
            s.access(&reads, &[]);
        }
        Ok(s)
    }

    /// Render the fault sweep (one table row and one JSON row per
    /// `(scheme, f)` pair).
    pub fn run(ctx: &RunCtx) -> String {
        let fractions: Vec<f64> = match ctx.fault_fraction {
            Some(f) => vec![f],
            None => FRACTIONS.to_vec(),
        };
        let mut t = Table::new(vec![
            "scheme",
            "f",
            "dead M",
            "lost cells",
            "read survival",
            "recovered",
            "stale",
            "slowdown",
        ]);
        let mut json = String::new();
        let mut detail = String::new();
        for &kind in &ctx.schemes {
            for &f in &fractions {
                let s = match run_one(kind, f, ctx) {
                    Ok(s) => s,
                    Err(e) => return format!("E14: cannot build {kind}: {e}"),
                };
                let rep = s.report();
                t.row(vec![
                    Scheme::name(&s).to_string(),
                    format!("{f:.4}"),
                    rep.dead_modules.to_string(),
                    rep.lost_cells.to_string(),
                    format!("{:.1}%", 100.0 * rep.read_survival()),
                    (rep.recovered_majority + rep.recovered_ida).to_string(),
                    rep.stale_reads.to_string(),
                    format!("{:.2}x", rep.slowdown()),
                ]);
                json.push_str(&rep.to_json(kind.name(), f));
                json.push('\n');
                if ctx.fault_fraction.is_some() {
                    detail.push_str(&format!(
                        "\n{} at f = {f:.4} ({}):\n{rep}\n",
                        kind.name(),
                        ctx.fault_placement
                    ));
                }
            }
        }
        format!(
            "E14: the zoo under static module faults ({} placement, seed {}).\n\
             Constant redundancy is fault tolerance: the copy schemes survive\n\
             every fault wave that leaves a majority alive, IDA survives up to\n\
             d-quorum lost shares per block, and single-copy hashing loses\n\
             cells at any f > 0. Slowdown is measured against a fault-free\n\
             twin on the identical workload.\n{}\n{}\njson:\n{}",
            ctx.fault_placement,
            ctx.seed,
            t.render(),
            detail,
            json
        )
    }
}

/// E15 — data-plane throughput: steps/sec, cycles/step, and allocs/step
/// across the zoo and a sweep of `n` — the perf trajectory's measured
/// object (`BENCH_throughput.json`).
pub mod throughput {
    use super::*;
    use cr_core::{SchemeKind, SimBuilder};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Instant;

    /// One measured `(scheme, n)` sweep point.
    #[derive(Debug, Clone)]
    pub struct ThroughputRow {
        /// Stable scheme name.
        pub scheme: &'static str,
        /// Simulated processors.
        pub n: usize,
        /// Simulated memory cells.
        pub m: usize,
        /// Timed steps (after warm-up).
        pub steps: usize,
        /// Wall-clock throughput of the timed loop.
        pub steps_per_sec: f64,
        /// Mean protocol phases per timed step.
        pub phases_per_step: f64,
        /// Mean network cycles per timed step.
        pub cycles_per_step: f64,
        /// Of those, cycles attributed to protocol stage 1 (zero for
        /// schemes without the two-stage access protocol).
        pub stage1_cycles_per_step: f64,
        /// Cycles attributed to stage 2 (`cycles - stage1`).
        pub stage2_cycles_per_step: f64,
        /// Mean messages per timed step.
        pub messages_per_step: f64,
        /// Mean heap allocations per timed step; `-1` when the counting
        /// allocator is not installed (see `metrics::counting`).
        pub allocs_per_step: f64,
        /// Median per-step wall-clock latency (µs), from the fixed-bucket
        /// histogram over every timed step.
        pub p50_us: f64,
        /// 99th-percentile per-step latency (µs) — the tail the serving
        /// layer (E16) inherits.
        pub p99_us: f64,
    }

    impl ThroughputRow {
        /// The JSON row `repro --json-out` collects (one per sweep point).
        pub fn to_json(&self) -> String {
            format!(
                concat!(
                    "{{\"experiment\":\"E15\",\"scheme\":\"{}\",\"n\":{},\"m\":{},",
                    "\"steps\":{},\"steps_per_sec\":{:.2},\"phases_per_step\":{:.2},",
                    "\"cycles_per_step\":{:.2},\"stage1_cycles_per_step\":{:.2},",
                    "\"stage2_cycles_per_step\":{:.2},\"messages_per_step\":{:.2},",
                    "\"allocs_per_step\":{:.2},\"p50_us\":{:.2},\"p99_us\":{:.2}}}"
                ),
                self.scheme,
                self.n,
                self.m,
                self.steps,
                self.steps_per_sec,
                self.phases_per_step,
                self.cycles_per_step,
                self.stage1_cycles_per_step,
                self.stage2_cycles_per_step,
                self.messages_per_step,
                self.allocs_per_step,
                self.p50_us,
                self.p99_us,
            )
        }
    }

    /// One sweep point to measure: `(kind, n, m, timed steps)`.
    type Point = (SchemeKind, usize, usize, usize);

    /// The sweep grid. The routed 2DMOT schemes simulate every packet
    /// cycle-by-cycle, so they run smaller instances and fewer steps; the
    /// flat schemes sweep up to `n = 1024` (the trajectory's headline
    /// point). `--quick` keeps one small `n` per scheme for CI.
    fn points(ctx: &RunCtx) -> Vec<Point> {
        let mut pts = Vec::new();
        for &kind in &ctx.schemes {
            let (ns, steps): (&[usize], usize) = match kind {
                SchemeKind::Hp2dmotLeaves | SchemeKind::Lpp2dmot => {
                    if ctx.quick {
                        (&[8], 10)
                    } else {
                        (&[8, 16], 30)
                    }
                }
                _ => {
                    if ctx.quick {
                        (&[64], 50)
                    } else {
                        (&[64, 256, 1024], 200)
                    }
                }
            };
            for &n in ns {
                pts.push((kind, n, 4 * n, steps));
            }
        }
        pts
    }

    /// The timed loop repeats its fixed step block until at least this
    /// much wall-clock has elapsed, so `steps_per_sec` never judges a
    /// sub-millisecond window (a single scheduler stall on a shared CI
    /// runner would otherwise read as a fake >3x regression).
    const MIN_TIMED: std::time::Duration = std::time::Duration::from_millis(50);

    /// …and until at least this many steps have been timed. The routed
    /// 2DMOT points step so slowly that 50ms covers only a few hundred
    /// steps — too few for a stable p99 column; the floor gives every
    /// sweep point a four-digit sample count, full mode only (`--quick`
    /// keeps CI latency bounded and does not publish numbers).
    const MIN_STEPS: usize = 1000;

    /// Measure one sweep point. Workload patterns are pre-generated so the
    /// timed loop contains nothing but `access` calls; the seed is derived
    /// from the point itself, so sweep points are independent and the
    /// measured counters (phases/cycles/messages) are identical no matter
    /// how `--threads` schedules them. Counters and allocations are taken
    /// over the first block only (deterministic); allocations use the
    /// thread-attributed counter, so concurrent sweep workers cannot
    /// pollute each other's windows. Timing accumulates repeated
    /// identical blocks until [`MIN_TIMED`] *and* `min_steps`.
    fn measure(point: Point, base_seed: u64, min_steps: usize) -> ThroughputRow {
        let (kind, n, m, steps) = point;
        let seed = base_seed ^ simrng::mix64((n as u64) << 8 | kind.name().len() as u64);
        let mut s = SimBuilder::new(n, m)
            .kind(kind)
            .seed(seed)
            .build()
            .expect("E15 sweep regimes are feasible");
        let mut rng = rng_from_seed(seed ^ 15);
        let pool: Vec<workloads::StepPattern> = (0..16.min(steps))
            .map(|_| workloads::uniform(n, m, 0.3, &mut rng))
            .collect();
        // Warm-up: fills every reusable buffer to its steady-state
        // capacity so the timed loop sees the engine's true hot path.
        for p in &pool {
            s.access(&p.reads, &p.writes);
        }
        let (tot0, steps0) = s.totals();
        // Per-step latencies feed the fixed-bucket histogram (p50/p99
        // columns) — the same `metrics::Histogram` the serving layer
        // merges across shards, replacing the old min/max-free timing.
        let mut lat = metrics::Histogram::new();
        let alloc0 = metrics::counting::thread_allocations();
        let t0 = Instant::now();
        for i in 0..steps {
            let p = &pool[i % pool.len()];
            let s0 = Instant::now();
            s.access(&p.reads, &p.writes);
            lat.record(s0.elapsed().as_nanos() as u64);
        }
        let allocs = metrics::counting::thread_allocations() - alloc0;
        let (tot, steps1) = s.totals();
        let timed = (steps1 - steps0).max(1) as f64;
        let mut done = steps;
        while t0.elapsed() < MIN_TIMED || done < min_steps {
            for i in 0..steps {
                let p = &pool[i % pool.len()];
                let s0 = Instant::now();
                s.access(&p.reads, &p.writes);
                lat.record(s0.elapsed().as_nanos() as u64);
            }
            done += steps;
        }
        let elapsed = t0.elapsed().as_secs_f64().max(1e-9);
        let cycles_per_step = (tot.cycles - tot0.cycles) as f64 / timed;
        // Stage attribution from the protocol totals (the same counters
        // the serving layer exports as cr_stage{1,2}_cycles_total).
        let stage1_cycles_per_step =
            (tot.protocol.stage1_cycles - tot0.protocol.stage1_cycles) as f64 / timed;
        ThroughputRow {
            scheme: kind.name(),
            n,
            m,
            steps: done,
            steps_per_sec: done as f64 / elapsed,
            phases_per_step: (tot.phases - tot0.phases) as f64 / timed,
            cycles_per_step,
            stage1_cycles_per_step,
            stage2_cycles_per_step: cycles_per_step - stage1_cycles_per_step,
            messages_per_step: (tot.messages - tot0.messages) as f64 / timed,
            allocs_per_step: if metrics::counting::is_active() {
                allocs as f64 / timed
            } else {
                -1.0
            },
            p50_us: lat.p50() as f64 / 1e3,
            p99_us: lat.p99() as f64 / 1e3,
        }
    }

    /// Measure every sweep point. With `ctx.threads > 1` the points are
    /// claimed from a shared queue by `std::thread::scope` workers — each
    /// point is seed-isolated, so the deterministic counters are
    /// unaffected; wall-clock numbers share the machine, which the
    /// regression guard's 3x margin absorbs.
    pub fn rows(ctx: &RunCtx) -> Vec<ThroughputRow> {
        let pts = points(ctx);
        let min_steps = if ctx.quick { 0 } else { MIN_STEPS };
        if ctx.threads <= 1 {
            return pts
                .into_iter()
                .map(|p| measure(p, ctx.seed, min_steps))
                .collect();
        }
        let next = AtomicUsize::new(0);
        let mut indexed: Vec<(usize, ThroughputRow)> = std::thread::scope(|scope| {
            let workers: Vec<_> = (0..ctx.threads.min(pts.len()))
                .map(|_| {
                    scope.spawn(|| {
                        let mut out = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            let Some(&p) = pts.get(i) else { break };
                            out.push((i, measure(p, ctx.seed, min_steps)));
                        }
                        out
                    })
                })
                .collect();
            workers
                .into_iter()
                .flat_map(|w| w.join().expect("sweep worker must not panic"))
                .collect()
        });
        indexed.sort_by_key(|&(i, _)| i);
        indexed.into_iter().map(|(_, r)| r).collect()
    }

    /// Render rows as the experiment's table + JSON block.
    pub fn render(rows: &[ThroughputRow], ctx: &RunCtx) -> String {
        let mut t = Table::new(vec![
            "scheme",
            "n",
            "m",
            "steps",
            "steps/sec",
            "phases/step",
            "cycles/step",
            "s1cyc/step",
            "s2cyc/step",
            "msgs/step",
            "allocs/step",
            "p50 us",
            "p99 us",
        ]);
        let mut json = String::new();
        for r in rows {
            t.row(vec![
                r.scheme.to_string(),
                r.n.to_string(),
                r.m.to_string(),
                r.steps.to_string(),
                fnum(r.steps_per_sec),
                fnum(r.phases_per_step),
                fnum(r.cycles_per_step),
                fnum(r.stage1_cycles_per_step),
                fnum(r.stage2_cycles_per_step),
                fnum(r.messages_per_step),
                if r.allocs_per_step < 0.0 {
                    "n/a".to_string()
                } else {
                    fnum(r.allocs_per_step)
                },
                fnum(r.p50_us),
                fnum(r.p99_us),
            ]);
            json.push_str(&r.to_json());
            json.push('\n');
        }
        format!(
            "E15: data-plane throughput (uniform steps, m = 4n, seed {},\n\
             {} thread(s){}). steps/sec is wall-clock; phases/cycles/messages\n\
             are the engine's own deterministic counters; s1cyc/s2cyc split\n\
             the cycles between the two protocol stages (zero stage 1 for\n\
             schemes without the two-stage protocol); allocs/step needs\n\
             the counting allocator (installed by the repro binary).\n{}\njson:\n{}",
            ctx.seed,
            ctx.threads.max(1),
            if ctx.quick { ", --quick" } else { "" },
            t.render(),
            json
        )
    }

    /// Render the sweep (the `repro` registry entry point).
    pub fn run(ctx: &RunCtx) -> String {
        render(&rows(ctx), ctx)
    }

    /// Extract a `"key":value` field from one of our own JSON rows (the
    /// workspace is offline — no serde — and the format is fixed).
    pub fn json_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
        let tag = format!("\"{key}\":");
        let at = line.find(&tag)? + tag.len();
        let rest = &line[at..];
        let end = rest.find([',', '}'])?;
        Some(rest[..end].trim_matches('"'))
    }

    /// Coarse regression guard: for every `(scheme, n)` point present in
    /// both the fresh rows and the checked-in baseline JSON, fail if
    /// steps/sec dropped more than 3x (absorbs runner noise; catches a
    /// data plane that re-grew its allocations).
    pub fn check_baseline(rows: &[ThroughputRow], baseline: &str) -> Result<String, String> {
        let mut checked = 0;
        let mut regressions = String::new();
        for line in baseline.lines().filter(|l| l.contains("\"E15\"")) {
            let (Some(scheme), Some(n), Some(sps)) = (
                json_field(line, "scheme"),
                json_field(line, "n"),
                json_field(line, "steps_per_sec"),
            ) else {
                return Err(format!("malformed baseline row: {line}"));
            };
            let old: f64 = sps
                .parse()
                .map_err(|_| format!("bad steps_per_sec in baseline: {line}"))?;
            let Some(row) = rows
                .iter()
                .find(|r| r.scheme == scheme && r.n.to_string() == n)
            else {
                continue; // baseline covers more points than this run
            };
            checked += 1;
            if row.steps_per_sec * 3.0 < old {
                regressions.push_str(&format!(
                    "  {scheme} n={n}: {:.1} steps/sec vs baseline {old:.1} (>3x drop)\n",
                    row.steps_per_sec
                ));
            }
        }
        if checked == 0 {
            return Err("baseline shares no sweep points with this run".to_string());
        }
        if regressions.is_empty() {
            Ok(format!("baseline guard: {checked} point(s) within 3x"))
        } else {
            Err(format!("throughput regressions:\n{regressions}"))
        }
    }
}

/// E16 — serving throughput: thousands of concurrent sessions multiplexed
/// across the sharded session service (`cr-serve`), in-process (no socket
/// in the loop) — the serving trajectory's measured object
/// (`BENCH_serve.json`).
pub mod serve {
    use super::*;
    use cr_core::SchemeKind;
    use cr_serve::{Service, ServiceConfig, SessionSpec, WorkloadSpec};
    use std::time::Instant;

    /// Per-session machine size: small sessions are the serving workload
    /// (many tenants, each modest), and they keep the grid affordable.
    pub const SESSION_N: usize = 16;
    /// Cells per session (`m = 4n`, as in E15).
    pub const SESSION_M: usize = 64;
    /// Steps each session executes during the timed window.
    const STEPS_PER_SESSION: u64 = 64;
    /// Steps per `STEPN`-shaped command (amortizes the queue round-trip;
    /// well under [`cr_serve::MAX_STEP_BATCH`]).
    const BATCH: u64 = 32;
    /// Driver threads (the in-process stand-ins for client connections).
    /// Each drives its chunk of sessions through
    /// [`cr_serve::ServiceHandle::step_many`] — commands for a whole
    /// round are in flight at once, like a pipelined TCP client.
    const DRIVERS: usize = 8;

    /// One measured `(scheme, shards, sessions)` grid point.
    #[derive(Debug, Clone)]
    pub struct ServeRow {
        /// Stable scheme name.
        pub scheme: &'static str,
        /// Service shard count.
        pub shards: usize,
        /// Concurrent sessions held open through the whole window.
        pub sessions: usize,
        /// Total steps executed across all sessions.
        pub steps: u64,
        /// Sustained service-wide throughput.
        pub steps_per_sec: f64,
        /// Median per-step latency (µs) from the merged shard histograms.
        pub p50_us: f64,
        /// 99th-percentile per-step latency (µs).
        pub p99_us: f64,
        /// Stage-1 cycles over the window, from the service's
        /// `cr_stage1_cycles_total` metric (aggregate over shards).
        pub stage1_cycles: u64,
        /// Stage-2 cycles over the window (`cr_stage2_cycles_total`).
        pub stage2_cycles: u64,
    }

    impl ServeRow {
        /// The JSON row `repro --json-out` collects.
        pub fn to_json(&self) -> String {
            format!(
                concat!(
                    "{{\"experiment\":\"E16\",\"scheme\":\"{}\",\"shards\":{},",
                    "\"sessions\":{},\"n\":{},\"m\":{},\"steps\":{},",
                    "\"steps_per_sec\":{:.2},\"p50_us\":{:.2},\"p99_us\":{:.2},",
                    "\"stage1_cycles\":{},\"stage2_cycles\":{}}}"
                ),
                self.scheme,
                self.shards,
                self.sessions,
                SESSION_N,
                SESSION_M,
                self.steps,
                self.steps_per_sec,
                self.p50_us,
                self.p99_us,
                self.stage1_cycles,
                self.stage2_cycles,
            )
        }
    }

    /// The schemes E16 serves. The routed 2DMOT schemes simulate every
    /// network packet and would dominate the grid by hours; they are
    /// excluded here (E15 covers their single-session cost) and the
    /// rendering names the exclusion.
    fn flat(kind: SchemeKind) -> bool {
        !matches!(kind, SchemeKind::Hp2dmotLeaves | SchemeKind::Lpp2dmot)
    }

    /// The `(shards, sessions)` grid. Full mode ends at the acceptance
    /// point — ≥ 1000 concurrent sessions on 4 shards; `--quick` keeps
    /// one small point for CI.
    fn grid(ctx: &RunCtx) -> Vec<(usize, usize)> {
        if ctx.quick {
            vec![(2, 32)]
        } else {
            vec![(1, 64), (2, 256), (4, 1024)]
        }
    }

    /// Measure one grid point: open every session up front (they stay
    /// live for the whole window — that is the concurrency being
    /// claimed), then drive them from [`DRIVERS`] threads via pipelined
    /// `step_many` batches (every command of a round is enqueued before
    /// any reply is awaited, so the shard workers' drain loops service
    /// bursts), and read the merged latency histogram at the end.
    fn measure(kind: SchemeKind, shards: usize, sessions: usize, seed: u64) -> ServeRow {
        let service =
            Service::start(ServiceConfig::with_shards(shards)).expect("spawn shard workers");
        let h = service.handle();
        let sids: Vec<u64> = (0..sessions)
            .map(|i| {
                h.open(
                    SessionSpec::new(SESSION_N, SESSION_M, kind)
                        .seed(seed ^ simrng::mix64(i as u64)),
                )
                .expect("E16 session specs are feasible")
                .sid
            })
            .collect();
        let t0 = Instant::now();
        std::thread::scope(|scope| {
            for chunk in sids.chunks(sessions.div_ceil(DRIVERS.min(sessions))) {
                let h = h.clone();
                scope.spawn(move || {
                    for _ in 0..(STEPS_PER_SESSION / BATCH) {
                        let sum = h
                            .step_many(chunk, &WorkloadSpec::Uniform, BATCH)
                            .expect("shards stay up");
                        assert_eq!(sum.errors, 0, "in-budget steps succeed");
                        assert_eq!(sum.executed, chunk.len() as u64 * BATCH);
                    }
                });
            }
        });
        let elapsed = t0.elapsed().as_secs_f64().max(1e-9);
        let info = h.info().expect("service is up");
        assert_eq!(info.sessions, sessions, "all sessions stayed live");
        let steps = sessions as u64 * STEPS_PER_SESSION;
        // Cycle attribution comes straight off the service's metrics
        // registry — the same counters METRICS exports as
        // cr_stage{1,2}_cycles_total, summed across shards.
        let reg = h.registry();
        let row = ServeRow {
            scheme: kind.name(),
            shards,
            sessions,
            steps,
            steps_per_sec: steps as f64 / elapsed,
            p50_us: info.latency.p50() as f64 / 1e3,
            p99_us: info.latency.p99() as f64 / 1e3,
            stage1_cycles: reg.total("cr_stage1_cycles_total").unwrap_or(0),
            stage2_cycles: reg.total("cr_stage2_cycles_total").unwrap_or(0),
        };
        service.shutdown();
        row
    }

    /// Measure the whole grid.
    pub fn rows(ctx: &RunCtx) -> Vec<ServeRow> {
        let mut out = Vec::new();
        for &kind in ctx.schemes.iter().filter(|&&k| flat(k)) {
            for &(shards, sessions) in &grid(ctx) {
                out.push(measure(kind, shards, sessions, ctx.seed));
            }
        }
        out
    }

    /// Render rows as the experiment's table + JSON block.
    pub fn render(rows: &[ServeRow], ctx: &RunCtx) -> String {
        let mut t = Table::new(vec![
            "scheme",
            "shards",
            "sessions",
            "steps",
            "steps/sec",
            "p50 us",
            "p99 us",
        ]);
        let mut json = String::new();
        for r in rows {
            t.row(vec![
                r.scheme.to_string(),
                r.shards.to_string(),
                r.sessions.to_string(),
                r.steps.to_string(),
                fnum(r.steps_per_sec),
                fnum(r.p50_us),
                fnum(r.p99_us),
            ]);
            json.push_str(&r.to_json());
            json.push('\n');
        }
        // Per-phase cycle attribution, read off the service's metrics
        // registry (shard-count-invariant in aggregate): where each grid
        // point's simulated network cycles actually went.
        let mut attr = Table::new(vec![
            "scheme",
            "shards",
            "sessions",
            "s1cyc/step",
            "s2cyc/step",
            "stage1 %",
        ]);
        for r in rows {
            let steps = (r.steps as f64).max(1.0);
            let total = (r.stage1_cycles + r.stage2_cycles) as f64;
            attr.row(vec![
                r.scheme.to_string(),
                r.shards.to_string(),
                r.sessions.to_string(),
                fnum(r.stage1_cycles as f64 / steps),
                fnum(r.stage2_cycles as f64 / steps),
                if total > 0.0 {
                    format!("{:.1}", 100.0 * r.stage1_cycles as f64 / total)
                } else {
                    "n/a".to_string()
                },
            ]);
        }
        let skipped: Vec<&str> = ctx
            .schemes
            .iter()
            .filter(|&&k| !flat(k))
            .map(|k| k.name())
            .collect();
        format!(
            "E16: serving throughput — concurrent sessions (n={}, m={})\n\
             multiplexed over the sharded session service, driven in-process\n\
             by {DRIVERS} pipelining client threads (step_many, {BATCH}-step\n\
             commands), {} steps/session (seed {}{}).\n\
             Latency quantiles come from the per-shard fixed-bucket\n\
             histograms, merged.{}\n{}\n\n\
             cycle attribution (from the cr_stage*_cycles_total metrics):\n{}\njson:\n{}",
            SESSION_N,
            SESSION_M,
            STEPS_PER_SESSION,
            ctx.seed,
            if ctx.quick { ", --quick" } else { "" },
            if skipped.is_empty() {
                String::new()
            } else {
                format!(
                    "\n             Excluded (cycle-level routing, see E15): {}.",
                    skipped.join(", ")
                )
            },
            t.render(),
            attr.render(),
            json
        )
    }

    /// Render the grid (the `repro` registry entry point).
    pub fn run(ctx: &RunCtx) -> String {
        render(&rows(ctx), ctx)
    }
}

/// E17 — verification overhead: what the always-on PRAM-consistency
/// plane (`cr-verify`, DESIGN.md §12) costs the serving layer. For each
/// flat scheme and each `verify=` mode (off / ring / full) the grid
/// measures (a) service-wide steps/sec, E16-shaped (concurrent sessions
/// over sharded `cr-serve`, pipelined `step_many` drivers), and (b)
/// allocations/step on a single in-process session — the ring mode must
/// hold the data plane's flat-alloc line (`BENCH_verify.json`).
pub mod verify_overhead {
    use super::*;
    use cr_core::SchemeKind;
    use cr_serve::{
        Service, ServiceConfig, Session, SessionSpec, SharedHistogram, SimClock, Tick, VerifyMode,
        WorkloadSpec,
    };
    use std::time::Instant;

    /// Per-session processors (same serving shape as E16).
    pub const SESSION_N: usize = super::serve::SESSION_N;
    /// Cells per session.
    pub const SESSION_M: usize = super::serve::SESSION_M;
    /// Steps each session executes during the timed window.
    const STEPS_PER_SESSION: u64 = 64;
    /// Steps per pipelined command.
    const BATCH: u64 = 32;
    /// In-process driver threads.
    const DRIVERS: usize = 8;
    /// Steps in the single-session allocation probe's counted window.
    const PROBE_STEPS: u64 = 256;

    /// The three verification modes under measurement.
    const MODES: [VerifyMode; 3] = [VerifyMode::Off, VerifyMode::Ring, VerifyMode::Full];

    /// One measured `(scheme, mode)` grid point.
    #[derive(Debug, Clone)]
    pub struct VerifyRow {
        /// Stable scheme name.
        pub scheme: &'static str,
        /// Verification mode (`off` / `ring` / `full`).
        pub mode: &'static str,
        /// Service shard count.
        pub shards: usize,
        /// Concurrent sessions held open through the window.
        pub sessions: usize,
        /// Total steps executed across all sessions.
        pub steps: u64,
        /// Sustained service-wide throughput.
        pub steps_per_sec: f64,
        /// Throughput relative to the same scheme's `off` row (1.0 =
        /// free; filled by [`rows`] once the `off` baseline exists).
        pub vs_off: f64,
        /// Heap allocations per step on a single in-process session
        /// (steady state, thread-attributed counter; -1 when the
        /// counting allocator is not installed).
        pub allocs_per_step: f64,
        /// Trace ops the service checked over the window
        /// (`cr_verify_checked_ops_total`; 0 in `off` mode).
        pub checked_ops: u64,
    }

    impl VerifyRow {
        /// The JSON row `repro --json-out` collects.
        pub fn to_json(&self) -> String {
            format!(
                concat!(
                    "{{\"experiment\":\"E17\",\"scheme\":\"{}\",\"mode\":\"{}\",",
                    "\"shards\":{},\"sessions\":{},\"n\":{},\"m\":{},\"steps\":{},",
                    "\"steps_per_sec\":{:.2},\"vs_off\":{:.3},",
                    "\"allocs_per_step\":{:.2},\"checked_ops\":{}}}"
                ),
                self.scheme,
                self.mode,
                self.shards,
                self.sessions,
                SESSION_N,
                SESSION_M,
                self.steps,
                self.steps_per_sec,
                self.vs_off,
                self.allocs_per_step,
                self.checked_ops,
            )
        }
    }

    /// Same exclusion as E16: the routed 2DMOT schemes simulate every
    /// packet and E15 already covers their single-session cost.
    fn flat(kind: SchemeKind) -> bool {
        !matches!(kind, SchemeKind::Hp2dmotLeaves | SchemeKind::Lpp2dmot)
    }

    /// The `(shards, sessions)` point; one per run — the variable under
    /// test is the verify mode, not the grid.
    fn point(ctx: &RunCtx) -> (usize, usize) {
        if ctx.quick {
            (2, 32)
        } else {
            (2, 256)
        }
    }

    /// Allocations/step of one in-process session at steady state. The
    /// verifier preallocates everything at `open` (ring, spill, checker
    /// cells), so ring mode must measure the same as off; the counted
    /// window starts after a warm-up block that fills every reusable
    /// buffer.
    fn alloc_probe(kind: SchemeKind, mode: VerifyMode, seed: u64) -> f64 {
        if !metrics::counting::is_active() {
            return -1.0;
        }
        let clock = SimClock::manual();
        let lat = SharedHistogram::new();
        let spec = SessionSpec::new(SESSION_N, SESSION_M, kind)
            .seed(seed)
            .verify(mode)
            .max_steps(PROBE_STEPS * 4);
        let mut s = Session::open(spec, Tick::ZERO).expect("E17 session specs are feasible");
        s.step(&WorkloadSpec::Uniform, PROBE_STEPS, &lat, &clock)
            .expect("warm-up steps are in budget");
        let a0 = metrics::counting::thread_allocations();
        s.step(&WorkloadSpec::Uniform, PROBE_STEPS, &lat, &clock)
            .expect("probe steps are in budget");
        let allocs = metrics::counting::thread_allocations() - a0;
        allocs as f64 / PROBE_STEPS as f64
    }

    /// Measure one `(scheme, mode)` point: E16's driver shape (sessions
    /// opened up front, pipelined `step_many` rounds), with every
    /// session opened in the given verify mode.
    fn measure(kind: SchemeKind, mode: VerifyMode, ctx: &RunCtx) -> VerifyRow {
        let (shards, sessions) = point(ctx);
        let service =
            Service::start(ServiceConfig::with_shards(shards)).expect("spawn shard workers");
        let h = service.handle();
        let sids: Vec<u64> = (0..sessions)
            .map(|i| {
                h.open(
                    SessionSpec::new(SESSION_N, SESSION_M, kind)
                        .seed(ctx.seed ^ simrng::mix64(i as u64))
                        .verify(mode),
                )
                .expect("E17 session specs are feasible")
                .sid
            })
            .collect();
        let t0 = Instant::now();
        std::thread::scope(|scope| {
            for chunk in sids.chunks(sessions.div_ceil(DRIVERS.min(sessions))) {
                let h = h.clone();
                scope.spawn(move || {
                    for _ in 0..(STEPS_PER_SESSION / BATCH) {
                        let sum = h
                            .step_many(chunk, &WorkloadSpec::Uniform, BATCH)
                            .expect("shards stay up");
                        assert_eq!(sum.errors, 0, "in-budget steps succeed");
                    }
                });
            }
        });
        let elapsed = t0.elapsed().as_secs_f64().max(1e-9);
        let steps = sessions as u64 * STEPS_PER_SESSION;
        let checked_ops = h
            .registry()
            .total("cr_verify_checked_ops_total")
            .unwrap_or(0);
        service.shutdown();
        VerifyRow {
            scheme: kind.name(),
            mode: mode.name(),
            shards,
            sessions,
            steps,
            steps_per_sec: steps as f64 / elapsed,
            vs_off: 1.0,
            allocs_per_step: alloc_probe(kind, mode, ctx.seed ^ 17),
            checked_ops,
        }
    }

    /// Measure the whole grid and fill each row's `vs_off` ratio against
    /// its scheme's `off` baseline (measured first per scheme).
    pub fn rows(ctx: &RunCtx) -> Vec<VerifyRow> {
        let mut out = Vec::new();
        for &kind in ctx.schemes.iter().filter(|&&k| flat(k)) {
            let mut off_rate = 0.0f64;
            for mode in MODES {
                let mut row = measure(kind, mode, ctx);
                if matches!(mode, VerifyMode::Off) {
                    off_rate = row.steps_per_sec;
                }
                row.vs_off = if off_rate > 0.0 {
                    row.steps_per_sec / off_rate
                } else {
                    1.0
                };
                out.push(row);
            }
        }
        out
    }

    /// Render rows as the experiment's table + JSON block.
    pub fn render(rows: &[VerifyRow], ctx: &RunCtx) -> String {
        let mut t = Table::new(vec![
            "scheme",
            "mode",
            "sessions",
            "steps/sec",
            "vs off",
            "allocs/step",
            "checked ops",
        ]);
        let mut json = String::new();
        for r in rows {
            t.row(vec![
                r.scheme.to_string(),
                r.mode.to_string(),
                r.sessions.to_string(),
                fnum(r.steps_per_sec),
                format!("{:.3}", r.vs_off),
                format!("{:.2}", r.allocs_per_step),
                r.checked_ops.to_string(),
            ]);
            json.push_str(&r.to_json());
            json.push('\n');
        }
        let (shards, sessions) = point(ctx);
        format!(
            "E17: verification overhead — the cr-verify plane (DESIGN.md §12)\n\
             priced against the serving layer: {sessions} concurrent sessions\n\
             (n={}, m={}) over {shards} shards, {} steps/session, every\n\
             session opened verify=off|ring|full (seed {}{}).\n\
             allocs/step is a single-session steady-state probe — ring mode\n\
             preallocates at open, so it must match off.\n{}\njson:\n{}",
            SESSION_N,
            SESSION_M,
            STEPS_PER_SESSION,
            ctx.seed,
            if ctx.quick { ", --quick" } else { "" },
            t.render(),
            json
        )
    }

    /// Render the grid (the `repro` registry entry point).
    pub fn run(ctx: &RunCtx) -> String {
        render(&rows(ctx), ctx)
    }
}

/// End-to-end: classic P-RAM programs through every scheme, asserting
/// result equality with the ideal machine.
pub mod programs_e2e {
    use super::*;
    use cr_core::{Scheme, SimBuilder};
    use pram_machine::{programs, IdealMemory, Mode, Pram};

    fn run_sum(mem: &mut dyn SharedMemory, n: usize) -> (i64, u64, u64) {
        for i in 0..n {
            mem.poke(i, (i + 1) as i64);
        }
        let rep = Pram::new(n, Mode::Erew)
            .run(&programs::parallel_sum(n), mem)
            .unwrap();
        (mem.peek(0), rep.cost.phases, rep.cost.cycles)
    }

    /// Render the end-to-end table.
    pub fn run(ctx: &RunCtx) -> String {
        let n = 16;
        let m = programs::parallel_sum_layout(n);
        let expect = ((n * (n + 1)) / 2) as i64;
        let mut t = Table::new(vec![
            "scheme",
            "redundancy",
            "result",
            "correct",
            "phases",
            "cycles",
        ]);

        let mut ideal = IdealMemory::new(m);
        let (v, p, c) = run_sum(&mut ideal, n);
        t.row(vec![
            "ideal P-RAM".into(),
            "1".into(),
            v.to_string(),
            (v == expect).to_string(),
            p.to_string(),
            c.to_string(),
        ]);

        for &kind in &ctx.schemes {
            let mut s = match SimBuilder::new(n, m).kind(kind).seed(ctx.seed).build() {
                Ok(s) => s,
                Err(e) => return format!("end-to-end: cannot build {kind}: {e}"),
            };
            let (v, p, c) = run_sum(s.as_mut(), n);
            t.row(vec![
                Scheme::name(s.as_ref()).to_string(),
                fnum(s.redundancy()),
                v.to_string(),
                (v == expect).to_string(),
                p.to_string(),
                c.to_string(),
            ]);
        }

        format!(
            "End-to-end: EREW tree-sum (n={n}) executed through each scheme.\n\
             All must produce the ideal machine's result; cost columns show\n\
             what the simulation pays for realism.\n{}",
            t.render()
        )
    }
}
