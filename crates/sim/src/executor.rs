//! The deterministic executor: one OS thread, virtual time, a seeded
//! event queue — FoundationDB-style whole-service simulation.
//!
//! Every actor (client, per-shard sweep timer, chaos injector, shard
//! restart) is an event in one binary heap ordered by `(virtual time,
//! sequence number)`; the sequence number makes simultaneous events FIFO
//! so the interleaving is a pure function of the seed. The executor pops
//! an event, advances the shared manual [`SimClock`] to its instant, and
//! runs it; actors reschedule themselves until terminal. When the heap
//! drains, the run is over — there is no other source of progress.

use cr_core::clock::SimClock;
use cr_obs::SharedHistogram;
use cr_serve::protocol::{parse, Frame};
use cr_serve::{ServiceApi, ServiceConfig, Session, WorkloadSpec};
use simrng::{mix64, rng_from_seed};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::Duration;

use crate::chaos::Chaos;
use crate::client::SimClient;
use crate::client::{ClientOutcome, Next};
use crate::report::{ClientRow, SimReport};
use crate::service::SimService;

/// Knobs of one simulation run. Defaults give a few virtual
/// milliseconds of 8 clients over 4 shards — small enough for a test,
/// busy enough that chaos finds interleavings.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The run seed: every client stream, chunk size, think time, and
    /// chaos draw derives from it.
    pub seed: u64,
    /// Simulated shards.
    pub shards: usize,
    /// Simulated clients (one session each).
    pub clients: usize,
    /// Steps each client drives through its session.
    pub steps: u64,
    /// Scheme name (wire spelling, e.g. `hashed`, `hp-dmmpc`).
    pub scheme: String,
    /// Simulated P-RAM processors per session.
    pub n: usize,
    /// Simulated shared-memory cells per session.
    pub m: usize,
    /// Whether to inject chaos.
    pub chaos: bool,
    /// Per-shard queue capacity (small by default so storms saturate).
    pub queue_capacity: usize,
    /// Per-shard event-ring capacity.
    pub events_capacity: usize,
    /// Sweep cadence (virtual).
    pub sweep_every: Duration,
    /// Session idle TTL (virtual; `ttl-ms` wire granularity, so ≥1ms).
    pub ttl: Duration,
    /// Chaos tick cadence (virtual).
    pub chaos_every: Duration,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 1,
            shards: 4,
            clients: 8,
            steps: 256,
            scheme: "hashed".to_string(),
            n: 8,
            m: 64,
            chaos: false,
            queue_capacity: 32,
            events_capacity: 4096,
            sweep_every: Duration::from_micros(500),
            ttl: Duration::from_millis(2),
            chaos_every: Duration::from_micros(250),
        }
    }
}

/// What a queued event does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Work {
    /// Wake client `i`.
    Client(usize),
    /// Run shard `s`'s TTL sweep.
    Sweep(usize),
    /// One chaos tick.
    Chaos,
    /// Recover crashed shard `s`.
    Restart(usize),
}

/// One scheduled event: ordered by `(at, seq)` — `seq` is unique, so
/// the order is total and simultaneous events fire FIFO.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Ev {
    at: u64,
    seq: u64,
    work: Work,
}

impl Ord for Ev {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Stagger between client start times (virtual ramp-up).
const RAMP_NS: u64 = 7_000;

/// Salt separating the chaos rng stream from every client stream.
const CHAOS_SALT: u64 = 0xC4A0_5EED_0F0F_0F0F;

/// Run one simulation to completion and report.
pub fn run(cfg: &SimConfig) -> SimReport {
    let clock = SimClock::manual();
    let mut service = SimService::new(&ServiceConfig {
        shards: cfg.shards.max(1),
        queue_capacity: cfg.queue_capacity,
        events_capacity: cfg.events_capacity,
        sweep_every: cfg.sweep_every,
        clock: clock.clone(),
    });
    let mut clients: Vec<SimClient> = (0..cfg.clients.max(1))
        .map(|i| SimClient::new(cfg.seed, i, cfg.n, cfg.m, &cfg.scheme, cfg.steps, cfg.ttl))
        .collect();
    let mut chaos = cfg
        .chaos
        .then(|| Chaos::new(rng_from_seed(mix64(cfg.seed ^ CHAOS_SALT))));

    let mut heap: BinaryHeap<Ev> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut schedule = |heap: &mut BinaryHeap<Ev>, at: u64, work: Work| {
        heap.push(Ev { at, seq, work });
        seq += 1;
    };
    for i in 0..clients.len() {
        schedule(&mut heap, i as u64 * RAMP_NS, Work::Client(i));
    }
    let sweep_ns = cfg.sweep_every.as_nanos().max(1) as u64;
    for s in 0..service.shards() {
        schedule(&mut heap, sweep_ns, Work::Sweep(s));
    }
    let chaos_ns = cfg.chaos_every.as_nanos().max(1) as u64;
    if chaos.is_some() {
        schedule(&mut heap, chaos_ns, Work::Chaos);
    }

    let mut restarts = 0u64;
    while let Some(ev) = heap.pop() {
        let now = clock.now().nanos();
        if ev.at > now {
            let _ = clock.advance(Duration::from_nanos(ev.at - now));
        }
        let now_ns = clock.now().nanos();
        match ev.work {
            Work::Client(i) => {
                if let Next::After(d) = clients[i].wake(&mut service, now_ns) {
                    schedule(&mut heap, now_ns + d.as_nanos() as u64, Work::Client(i));
                }
            }
            Work::Sweep(s) => {
                service.sweep(s, clock.now());
                // Sweeps stop once nothing can create or hold a session:
                // that (plus client and restart events draining) ends
                // the run.
                if clients.iter().any(|c| c.active()) || service.live_sessions() > 0 {
                    schedule(&mut heap, now_ns + sweep_ns, Work::Sweep(s));
                }
            }
            Work::Chaos => {
                if let Some(ch) = chaos.as_mut() {
                    if let Some((shard, down)) =
                        ch.tick(&mut service, &mut clients, now_ns, cfg.ttl)
                    {
                        schedule(
                            &mut heap,
                            now_ns + down.as_nanos() as u64,
                            Work::Restart(shard),
                        );
                    }
                    if clients.iter().any(|c| c.active()) {
                        schedule(&mut heap, now_ns + chaos_ns, Work::Chaos);
                    }
                }
            }
            Work::Restart(s) => {
                service.restart(s);
                restarts += 1;
            }
        }
    }

    finish(cfg, service, clients, chaos, restarts, &clock)
}

/// Drain the final service state into a [`SimReport`].
fn finish(
    cfg: &SimConfig,
    mut service: SimService,
    clients: Vec<SimClient>,
    chaos: Option<Chaos>,
    restarts: u64,
    clock: &SimClock,
) -> SimReport {
    let violations = service
        .verify_all()
        .map(|v| v.violations)
        .unwrap_or(u64::MAX);
    let (evicted, steps_total) = service
        .info()
        .map(|i| (i.evicted, i.steps))
        .unwrap_or((0, 0));
    let events_jsonl = match service.events(None) {
        Ok(evs) => {
            let mut s = String::new();
            for e in &evs {
                s.push_str(&e.to_json());
                s.push('\n');
            }
            s
        }
        Err(_) => String::new(),
    };

    let mut rows = Vec::with_capacity(clients.len());
    let (mut completed, mut lost, mut errored) = (0usize, 0usize, 0usize);
    let (mut hash_mismatches, mut inconsistent) = (0usize, 0usize);
    for client in clients {
        let o: ClientOutcome = client.outcome();
        let golden = if o.outcome == "closed" {
            golden_trace(&o.open_line, o.steps).unwrap_or(0)
        } else {
            0
        };
        match o.outcome {
            "closed" => {
                completed += 1;
                if o.trace != golden {
                    hash_mismatches += 1;
                }
                if !o.consistent {
                    inconsistent += 1;
                }
            }
            "lost" => lost += 1,
            _ => errored += 1,
        }
        rows.push(ClientRow {
            id: o.id,
            sid: o.sid,
            outcome: o.outcome,
            steps: o.steps,
            trace: o.trace,
            consistent: o.consistent,
            golden,
            frames: o.frames,
        });
    }

    SimReport {
        seed: cfg.seed,
        shards: cfg.shards.max(1),
        chaos: cfg.chaos,
        rows,
        completed,
        lost,
        errored,
        hash_mismatches,
        inconsistent,
        violations,
        evicted,
        steps_total,
        restarts,
        tally: chaos.map(|c| c.tally).unwrap_or_default(),
        final_virtual_ns: clock.now().nanos(),
        events_jsonl,
    }
}

/// Replay a closed client's session fault-free and single-threaded: the
/// same `OPEN` line, the same total step count, driven directly through
/// [`Session`]. The trace hash depends only on the spec and the number
/// of steps — not on chunking, probes, shard placement, or chaos — so
/// this is the golden value the simulated service must have produced.
fn golden_trace(open_line: &str, steps: u64) -> Option<u64> {
    let Ok(Frame::Open(spec)) = parse(open_line) else {
        return None;
    };
    let clock = SimClock::manual();
    let hist = SharedHistogram::default();
    let mut session = Session::open(spec, clock.now()).ok()?;
    let mut left = steps;
    while left > 0 {
        let chunk = left.min(1024);
        session
            .step(&WorkloadSpec::Uniform, chunk, &hist, &clock)
            .ok()?;
        left -= chunk;
    }
    Some(session.trace())
}
