//! Simulated framed clients: each one speaks the real wire grammar
//! (`OPEN`/`STEPN`/`STATS`/`TRACE`/`VERIFY`/`CLOSE`) through
//! `cr_serve::protocol::{parse, execute}` against the [`SimService`] —
//! no sockets, but the byte-level protocol surface is fully exercised.
//!
//! A client is a seeded state machine: open a session, drive its step
//! budget in random-sized `STEPN` chunks with occasional `STATS`/`TRACE`
//! probes, ask `VERIFY` for the PRAM verdict, then `CLOSE` and keep the
//! final trace hash. Chunk sizes and probe choices come from the
//! client's own forked rng, so two clients never share a stream and one
//! seed pins every frame of every client.

use cr_serve::protocol::{execute, parse};
use cr_serve::tcp::MAX_FRAME;
use simrng::{mix64, rng_from_seed, Rng, Xoshiro256pp};
use std::time::Duration;

use crate::service::SimService;

/// The sim's framing layer: exactly what the TCP front end does to a
/// received line before the shared parser sees it — reject frames at or
/// past [`MAX_FRAME`] bytes, trim, parse, execute. Chaos floods and
/// clients go through the same door.
pub fn deliver(service: &mut SimService, line: &str) -> String {
    if line.len() as u64 >= MAX_FRAME {
        return "ERR frame exceeds 64KiB".to_string();
    }
    match parse(line.trim()) {
        Ok(frame) => execute(service, frame).unwrap_or_else(|| "OK bye".to_string()),
        Err(msg) => format!("ERR {msg}"),
    }
}

/// Per-client virtual think time between frames: 20–200µs.
const THINK_FLOOR_NS: u64 = 20_000;
const THINK_SPREAD_NS: u64 = 180_000;

/// Largest `STEPN` chunk a client requests at once.
const MAX_CHUNK: u64 = 32;

/// Why a client stopped before closing its session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Death {
    /// The session disappeared under it: shard crash or TTL eviction
    /// (`ERR shard down` / `ERR unknown session`). Expected under chaos.
    Lost,
    /// Any other error reply — never expected; fails the run.
    Error,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Opening,
    Running,
    Verifying,
    Closing,
    Closed,
    Dead(Death),
}

/// What one client did with its session, for the report.
#[derive(Debug, Clone)]
pub struct ClientOutcome {
    /// Client index.
    pub id: usize,
    /// Session id (0 if the open itself failed).
    pub sid: u64,
    /// `closed`, `lost`, or `error`.
    pub outcome: &'static str,
    /// Steps the service acknowledged.
    pub steps: u64,
    /// Final trace hash from `CLOSE` (closed clients only).
    pub trace: u64,
    /// The exact `OPEN` line sent — re-parsed for the golden replay.
    pub open_line: String,
    /// Whether `VERIFY` reported `verdict=consistent`.
    pub consistent: bool,
    /// Frames this client sent.
    pub frames: u64,
}

/// One simulated client.
pub struct SimClient {
    id: usize,
    rng: Xoshiro256pp,
    state: State,
    sid: u64,
    open_line: String,
    steps_target: u64,
    steps_done: u64,
    trace: u64,
    consistent: bool,
    frames: u64,
    /// Set by chaos: skip sending until this virtual instant — long
    /// enough past the session TTL that the sweeper evicts it first.
    stall_until_ns: Option<u64>,
}

/// What the executor should do after a wake.
pub enum Next {
    /// Schedule the next wake after this virtual delay.
    After(Duration),
    /// Terminal: no more wakes.
    Done,
}

impl SimClient {
    /// A fresh client. Its rng, session seed, and therefore every frame
    /// it will ever send derive from `(seed, id)` alone.
    pub fn new(
        seed: u64,
        id: usize,
        n: usize,
        m: usize,
        scheme: &str,
        steps: u64,
        ttl: Duration,
    ) -> SimClient {
        let client_seed = mix64(seed ^ mix64(id as u64 + 1));
        let ttl_ms = ttl.as_millis().max(1);
        SimClient {
            id,
            rng: rng_from_seed(client_seed),
            state: State::Opening,
            sid: 0,
            open_line: format!("OPEN {n} {m} {scheme} seed={client_seed} ttl-ms={ttl_ms}"),
            steps_target: steps.max(1),
            steps_done: 0,
            trace: 0,
            consistent: false,
            frames: 0,
            stall_until_ns: None,
        }
    }

    /// Whether this client is still driving its session.
    pub fn active(&self) -> bool {
        !matches!(self.state, State::Closed | State::Dead(_))
    }

    /// Whether this client holds a live session chaos can orphan.
    pub fn stallable(&self) -> bool {
        matches!(self.state, State::Running) && self.stall_until_ns.is_none()
    }

    /// Chaos: park the client past its session's TTL.
    pub fn stall(&mut self, until_ns: u64) {
        self.stall_until_ns = Some(until_ns);
    }

    /// This client's session id while one is live.
    pub fn sid(&self) -> u64 {
        self.sid
    }

    fn think(&mut self) -> Duration {
        Duration::from_nanos(THINK_FLOOR_NS + self.rng.below(THINK_SPREAD_NS))
    }

    /// Send the state machine's next frame through the real protocol
    /// and advance on the reply.
    pub fn wake(&mut self, service: &mut SimService, now_ns: u64) -> Next {
        if let Some(until) = self.stall_until_ns {
            if now_ns < until {
                // Parked by chaos: wake again once the TTL has passed.
                return Next::After(Duration::from_nanos(until - now_ns));
            }
            self.stall_until_ns = None;
        }
        let line = match self.state {
            State::Opening => self.open_line.clone(),
            State::Running => {
                // Mostly STEPN; occasionally probe STATS or TRACE (which
                // touch the session but never change its trace hash).
                if self.rng.chance(0.15) {
                    if self.rng.chance(0.5) {
                        format!("STATS {}", self.sid)
                    } else {
                        format!("TRACE {}", self.sid)
                    }
                } else {
                    let left = self.steps_target - self.steps_done;
                    let chunk = (1 + self.rng.below(MAX_CHUNK)).min(left);
                    format!("STEPN {} {chunk}", self.sid)
                }
            }
            State::Verifying => format!("VERIFY {}", self.sid),
            State::Closing => format!("CLOSE {}", self.sid),
            State::Closed | State::Dead(_) => return Next::Done,
        };
        self.frames += 1;
        let reply = deliver(service, &line);
        self.advance(&reply);
        match self.state {
            State::Closed | State::Dead(_) => Next::Done,
            _ => Next::After(self.think()),
        }
    }

    fn advance(&mut self, reply: &str) {
        if let Some(err) = reply.strip_prefix("ERR ") {
            // Losing the session to a crash or eviction is a legitimate
            // chaos outcome; anything else is a client-visible bug.
            self.state = if err.starts_with("shard down") || err.starts_with("unknown session") {
                State::Dead(Death::Lost)
            } else {
                State::Dead(Death::Error)
            };
            return;
        }
        match self.state {
            State::Opening => match field(reply, "sid=").and_then(|v| v.parse().ok()) {
                Some(sid) => {
                    self.sid = sid;
                    self.state = State::Running;
                }
                None => self.state = State::Dead(Death::Error),
            },
            State::Running => {
                if let Some(executed) =
                    field(reply, "executed=").and_then(|v| v.parse::<u64>().ok())
                {
                    self.steps_done += executed;
                }
                if self.steps_done >= self.steps_target {
                    self.state = State::Verifying;
                }
            }
            State::Verifying => {
                self.consistent = field(reply, "verdict=") == Some("consistent");
                self.state = State::Closing;
            }
            State::Closing => {
                match field(reply, "trace=").and_then(|v| u64::from_str_radix(v, 16).ok()) {
                    Some(trace) => {
                        self.trace = trace;
                        self.state = State::Closed;
                    }
                    None => self.state = State::Dead(Death::Error),
                }
            }
            State::Closed | State::Dead(_) => {}
        }
    }

    /// Fold the final state into a report row.
    pub fn outcome(self) -> ClientOutcome {
        let outcome = match self.state {
            State::Closed => "closed",
            State::Dead(Death::Lost) => "lost",
            // A client still mid-flight at drain time never happens (the
            // executor only stops when every client is terminal), but
            // classify it as an error rather than hide it.
            _ => "error",
        };
        ClientOutcome {
            id: self.id,
            sid: self.sid,
            outcome,
            steps: self.steps_done,
            trace: self.trace,
            open_line: self.open_line,
            consistent: self.consistent,
            frames: self.frames,
        }
    }
}

/// The value of a `key=` field in a reply line (up to the next space).
fn field<'a>(reply: &'a str, key: &str) -> Option<&'a str> {
    let start = reply.find(key)? + key.len();
    let rest = &reply[start..];
    Some(rest.split_whitespace().next().unwrap_or(rest))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_extraction() {
        let r = "OK sid=7 shard=2 scheme=hashed r=1 modules=64";
        assert_eq!(field(r, "sid="), Some("7"));
        assert_eq!(field(r, "scheme="), Some("hashed"));
        assert_eq!(field(r, "modules="), Some("64"));
        assert_eq!(field(r, "nope="), None);
    }
}
