//! `cr-sim` — deterministic whole-service simulation with seeded chaos
//! injection (DESIGN.md §13).
//!
//! The serving layer's behavior lives in [`cr_serve::ShardCore`] state
//! machines behind a runtime seam; production drives them on OS threads
//! ([`cr_serve::ThreadRuntime`]), and this crate drives the *identical*
//! cores from a single-threaded executor on virtual time — the
//! FoundationDB simulation-testing shape. One seed determines every
//! client frame, think time, sweep tick, and chaos draw, so:
//!
//! * same seed ⇒ same interleaving ⇒ byte-identical merged `EVENTS`
//!   JSONL and identical per-session trace hashes, at any shard count;
//! * a failure found at seed S is *replayed*, not chased:
//!   `repro sim --seed S --chaos`.
//!
//! Chaos (BUGGIFY-style, [`chaos::Chaos`]) crashes shards (with
//! scheduled restarts), reproduces queue-full storms, floods the parser
//! with malformed and oversized frames, and parks clients past their
//! session TTL to race the eviction sweeper. The invariant after all of
//! it ([`SimReport::ok`]): surviving sessions close with trace hashes
//! equal to a fault-free single-threaded replay of their spec, `VERIFY`
//! stays `consistent`, and no garbage frame is ever accepted.
//!
//! ```
//! use cr_sim::{run, SimConfig};
//!
//! let report = run(&SimConfig {
//!     seed: 7,
//!     chaos: true,
//!     ..SimConfig::default()
//! });
//! assert!(report.ok(), "{}", report.render());
//! let replay = run(&SimConfig { seed: 7, chaos: true, ..SimConfig::default() });
//! assert_eq!(report.fingerprint(), replay.fingerprint());
//! ```

pub mod chaos;
pub mod client;
pub mod executor;
pub mod report;
pub mod service;

pub use chaos::ChaosTally;
pub use client::{deliver, SimClient};
pub use executor::{run, SimConfig};
pub use report::{ClientRow, SimReport};
pub use service::SimService;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_run_completes_every_client() {
        let report = run(&SimConfig {
            seed: 42,
            clients: 3,
            steps: 48,
            ..SimConfig::default()
        });
        assert!(report.ok(), "{}", report.render());
        assert_eq!(report.completed, 3);
        assert_eq!(report.lost, 0);
        assert_eq!(report.hash_mismatches, 0);
        assert!(report.steps_total >= 3 * 48);
        assert!(report.events_jsonl.lines().count() > 0);
    }

    #[test]
    fn report_json_is_well_formed_enough() {
        let report = run(&SimConfig {
            seed: 5,
            clients: 2,
            steps: 16,
            ..SimConfig::default()
        });
        let j = report.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'), "{j}");
        assert!(j.contains("\"fingerprint\":"), "{j}");
        assert!(j.contains("\"rows\":["), "{j}");
    }
}
