//! Seeded chaos injection (BUGGIFY-style): each chaos tick draws from
//! its own rng and maybe perturbs the service — crash a shard (with a
//! scheduled restart), reproduce a queue-full storm, flood the parser
//! with malformed/oversized frames, or park a client past its session's
//! TTL so the sweeper evicts it under the client's feet.
//!
//! Everything is derived from the run seed, so a failing seed replays
//! the identical fault schedule: same tick, same victim, same frames.

use cr_serve::protocol::parse;
use cr_serve::tcp::MAX_FRAME;
use simrng::{Rng, Xoshiro256pp};
use std::time::Duration;

use crate::client::{deliver, SimClient};
use crate::service::SimService;

/// Per-tick injection probabilities. Tuned so a default-length run
/// (8 clients × 256 steps ≈ tens of chaos ticks) sees a crash or two,
/// a storm or two, and a steady trickle of garbage frames.
const P_CRASH: f64 = 0.08;
const P_STORM: f64 = 0.12;
const P_MALFORMED: f64 = 0.25;
const P_STALL: f64 = 0.15;

/// Frames that must fail to parse. One entry per distinct parser branch
/// a hostile or broken client could hit.
const GARBAGE: &[&str] = &[
    "FROB 1 2 3",
    "OPEN 4",
    "OPEN 8 64 not-a-scheme",
    "OPEN 8 sixty-four hashed",
    "STEP nope uniform",
    "STEP 1 warp 4",
    "STEP 1 raw",
    "STEPN 3",
    "STEPN 3 2 raw",
    "STATS",
    "VERIFY many words here",
    "CLOSE -2",
];

/// Tallies of what chaos actually did (the corpus test asserts coverage).
#[derive(Debug, Clone, Copy, Default)]
pub struct ChaosTally {
    /// Shards crashed.
    pub crashes: u64,
    /// Sessions lost to crashes.
    pub sessions_lost: u64,
    /// Queue-full storms injected.
    pub storms: u64,
    /// Queue-full incidents those storms recorded.
    pub queue_full: u64,
    /// Malformed frames the parser rejected.
    pub malformed_rejected: u64,
    /// Malformed frames the parser *accepted* (must stay 0).
    pub malformed_accepted: u64,
    /// Oversized frames rejected at the framing layer.
    pub oversized_rejected: u64,
    /// Clients parked past their TTL (eviction races).
    pub stalls: u64,
}

/// The chaos injector: one rng, one tally, one reusable oversized frame.
pub struct Chaos {
    rng: Xoshiro256pp,
    /// A frame one byte past [`MAX_FRAME`]: a syntactically plausible
    /// `STEPN` whose count token never ends.
    oversized: String,
    /// Running totals of injected faults.
    pub tally: ChaosTally,
}

impl Chaos {
    /// A fresh injector over its own seeded stream.
    pub fn new(rng: Xoshiro256pp) -> Chaos {
        let mut oversized = String::with_capacity(MAX_FRAME as usize + 1);
        oversized.push_str("STEPN 1 ");
        while oversized.len() as u64 <= MAX_FRAME {
            oversized.push('9');
        }
        Chaos {
            rng,
            oversized,
            tally: ChaosTally::default(),
        }
    }

    /// One chaos tick at virtual time `now_ns`. Returns the restart
    /// deadline for a crashed shard, if one was taken down.
    pub fn tick(
        &mut self,
        service: &mut SimService,
        clients: &mut [SimClient],
        now_ns: u64,
        ttl: Duration,
    ) -> Option<(usize, Duration)> {
        let mut restart = None;
        if self.rng.chance(P_CRASH) {
            let shard = self.rng.index(service.shards());
            if let Some(lost) = service.crash(shard) {
                self.tally.crashes += 1;
                self.tally.sessions_lost += lost as u64;
                // Recover well within the run: 300µs–1ms of downtime.
                let down = Duration::from_nanos(300_000 + self.rng.below(700_000));
                restart = Some((shard, down));
            }
        }
        if self.rng.chance(P_STORM) {
            let shard = self.rng.index(service.shards());
            let burst = 4 + self.rng.below(12);
            let hits = service.queue_storm(shard, burst);
            if hits > 0 {
                self.tally.storms += 1;
                self.tally.queue_full += hits;
            }
        }
        if self.rng.chance(P_MALFORMED) {
            for _ in 0..=self.rng.below(3) {
                let line = GARBAGE[self.rng.index(GARBAGE.len())];
                match parse(line) {
                    Err(_) => self.tally.malformed_rejected += 1,
                    Ok(_) => self.tally.malformed_accepted += 1,
                }
            }
            // An oversized frame must be cut off at the framing layer
            // before the parser ever sees it.
            if deliver(service, &self.oversized).starts_with("ERR frame exceeds") {
                self.tally.oversized_rejected += 1;
            } else {
                self.tally.malformed_accepted += 1;
            }
        }
        if self.rng.chance(P_STALL) {
            let victims: Vec<usize> = clients
                .iter()
                .enumerate()
                .filter(|(_, c)| c.stallable())
                .map(|(i, _)| i)
                .collect();
            if !victims.is_empty() {
                let victim = victims[self.rng.index(victims.len())];
                // Park past the TTL plus margin: the sweeper must win.
                let until = now_ns + ttl.as_nanos() as u64 + 500_000;
                clients[victim].stall(until);
                self.tally.stalls += 1;
            }
        }
        restart
    }
}
