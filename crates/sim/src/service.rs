//! The simulated service: the *same* [`ShardCore`]s production runs,
//! owned directly by one thread and driven synchronously.
//!
//! [`SimService`] implements [`ServiceApi`], so
//! `cr_serve::protocol::execute` runs the identical parser, executor,
//! and reply rendering against it that the TCP front end runs against a
//! threaded [`cr_serve::ServiceHandle`]. The only differences are the
//! driver mechanics: commands are handled inline (no queue wait), reply
//! channels are read back immediately, and a crashed core answers
//! `shard down` the way a dead worker's closed queue would.

use cr_core::clock::{SimClock, Tick};
use cr_obs::{Event, Registry};
use cr_serve::ServeError;
use cr_serve::{
    build_cores, chan, OpenInfo, Reply, ReplyTx, ServiceApi, ServiceConfig, ServiceInfo,
    SessionSpec, SessionStats, ShardCmd, ShardCore, StepSummary, TraceInfo, VerifyInfo,
    VerifySummary, WorkloadSpec,
};

/// The single-threaded stand-in for a running [`cr_serve::Service`].
pub struct SimService {
    cores: Vec<ShardCore>,
    registry: Registry,
    next_sid: u64,
    /// Mirrors [`cr_serve::ServiceConfig::queue_capacity`]: the storm
    /// injector inflates the depth gauge past this to reproduce a
    /// saturated queue's dequeue-side accounting.
    queue_capacity: usize,
}

impl SimService {
    /// Build the cores and registry exactly as [`cr_serve::Service`]
    /// would — same metric families, same event rings, same clock.
    pub fn new(cfg: &ServiceConfig) -> SimService {
        let (cores, registry) = build_cores(cfg);
        SimService {
            cores,
            registry,
            next_sid: 1,
            queue_capacity: cfg.queue_capacity.max(1),
        }
    }

    /// Shard count.
    pub fn shards(&self) -> usize {
        self.cores.len()
    }

    /// Which shard owns a session id (the service's hash routing).
    pub fn shard_of(&self, sid: u64) -> usize {
        (simrng::mix64(sid) % self.cores.len() as u64) as usize
    }

    /// Live sessions across every core.
    pub fn live_sessions(&self) -> usize {
        self.cores.iter().map(|c| c.sessions()).sum()
    }

    /// Whether a shard is crashed.
    pub fn is_down(&self, shard: usize) -> bool {
        self.cores.get(shard).is_some_and(|c| c.is_down())
    }

    /// Run one shard's TTL sweep (the executor's sweep events call this
    /// on the configured cadence, exactly like the thread driver's timer).
    pub fn sweep(&mut self, shard: usize, now: Tick) {
        if let Some(core) = self.cores.get_mut(shard) {
            core.sweep(now);
        }
    }

    /// Chaos: crash a shard (sessions lost, commands refused until
    /// [`SimService::restart`]). Returns sessions lost; `None` if the
    /// shard was already down or out of range.
    pub fn crash(&mut self, shard: usize) -> Option<usize> {
        match self.cores.get_mut(shard) {
            Some(core) if !core.is_down() => Some(core.crash()),
            _ => None,
        }
    }

    /// Chaos: recover a crashed shard.
    pub fn restart(&mut self, shard: usize) {
        if let Some(core) = self.cores.get_mut(shard) {
            if core.is_down() {
                core.restart();
            }
        }
    }

    /// Chaos: reproduce a queue-full storm's dequeue-side accounting —
    /// `burst` commands found the bounded queue at or past capacity, so
    /// the first dequeues record `queue_full` incidents. Returns how
    /// many incidents the core recorded.
    pub fn queue_storm(&mut self, shard: usize, burst: u64) -> u64 {
        let capacity = self.queue_capacity as u64;
        let Some(core) = self.cores.get_mut(shard) else {
            return 0;
        };
        if core.is_down() {
            return 0;
        }
        let depth = capacity + burst;
        core.queue_depth_gauge().add(depth);
        for _ in 0..depth {
            core.note_dequeue();
        }
        // Depths capacity+burst ..= capacity were at/past the threshold.
        burst + 1
    }

    /// Deliver one command to a shard and read back its reply — the
    /// synchronous analogue of enqueue → worker dequeue → reply recv.
    /// The reply channel has capacity 1 and each command sends exactly
    /// once, so the send never blocks and `try_recv` never misses.
    fn call(
        &mut self,
        shard: usize,
        make: impl FnOnce(ReplyTx) -> ShardCmd,
    ) -> Result<Reply, ServeError> {
        let core = self.cores.get_mut(shard).ok_or(ServeError::ShardDown)?;
        if core.is_down() {
            return Err(ServeError::ShardDown);
        }
        let (reply_tx, reply_rx) = chan(1);
        core.queue_depth_gauge().add(1);
        core.note_dequeue();
        core.handle(make(reply_tx));
        reply_rx.try_recv().ok_or(ServeError::ShardDown)?
    }
}

impl ServiceApi for SimService {
    fn open(&mut self, spec: SessionSpec) -> Result<OpenInfo, ServeError> {
        let sid = self.next_sid;
        self.next_sid += 1;
        let shard = self.shard_of(sid);
        match self.call(shard, |reply| ShardCmd::Open { sid, spec, reply })? {
            Reply::Open(info) => Ok(info),
            _ => Err(ServeError::ShardDown),
        }
    }

    fn step(
        &mut self,
        sid: u64,
        workload: WorkloadSpec,
        count: u64,
    ) -> Result<StepSummary, ServeError> {
        match self.call(self.shard_of(sid), |reply| ShardCmd::Step {
            sid,
            workload,
            count,
            reply,
        })? {
            Reply::Step(sum) => Ok(sum),
            _ => Err(ServeError::ShardDown),
        }
    }

    fn stats(&mut self, sid: u64) -> Result<SessionStats, ServeError> {
        match self.call(self.shard_of(sid), |reply| ShardCmd::Stats { sid, reply })? {
            Reply::Stats(st) => Ok(st),
            _ => Err(ServeError::ShardDown),
        }
    }

    fn trace(&mut self, sid: u64) -> Result<TraceInfo, ServeError> {
        match self.call(self.shard_of(sid), |reply| ShardCmd::Trace { sid, reply })? {
            Reply::Trace(t) => Ok(t),
            _ => Err(ServeError::ShardDown),
        }
    }

    fn verify(&mut self, sid: u64) -> Result<VerifyInfo, ServeError> {
        match self.call(self.shard_of(sid), |reply| ShardCmd::Verify {
            sid: Some(sid),
            reply,
        })? {
            Reply::Verify(info) => Ok(info),
            _ => Err(ServeError::ShardDown),
        }
    }

    fn verify_all(&mut self) -> Result<VerifySummary, ServeError> {
        let mut sum = VerifySummary::default();
        for shard in 0..self.cores.len() {
            match self.call(shard, |reply| ShardCmd::Verify { sid: None, reply })? {
                Reply::VerifySummary(s) => sum.merge(&s),
                _ => return Err(ServeError::ShardDown),
            }
        }
        Ok(sum)
    }

    fn close(&mut self, sid: u64) -> Result<TraceInfo, ServeError> {
        match self.call(self.shard_of(sid), |reply| ShardCmd::Close { sid, reply })? {
            Reply::Close(t) => Ok(t),
            _ => Err(ServeError::ShardDown),
        }
    }

    fn info(&mut self) -> Result<ServiceInfo, ServeError> {
        let mut per_shard = Vec::with_capacity(self.cores.len());
        for shard in 0..self.cores.len() {
            match self.call(shard, |reply| ShardCmd::Metrics { reply })? {
                Reply::Metrics(m) => per_shard.push(*m),
                _ => return Err(ServeError::ShardDown),
            }
        }
        Ok(ServiceInfo::from_shards(per_shard))
    }

    fn metrics_text(&mut self) -> String {
        self.registry.render()
    }

    fn events(&mut self, sid: Option<u64>) -> Result<Vec<Event>, ServeError> {
        if let Some(s) = sid {
            return match self.call(self.shard_of(s), |reply| ShardCmd::Events {
                sid: Some(s),
                reply,
            })? {
                Reply::Events(evs) => Ok(evs),
                _ => Err(ServeError::ShardDown),
            };
        }
        let mut all = Vec::new();
        for shard in 0..self.cores.len() {
            match self.call(shard, |reply| ShardCmd::Events { sid: None, reply })? {
                Reply::Events(evs) => all.extend(evs),
                _ => return Err(ServeError::ShardDown),
            }
        }
        // Stable by-sid sort: same merge the threaded handle performs,
        // so per-session event streams are shard-count-invariant.
        all.sort_by_key(|e| e.sid);
        Ok(all)
    }
}

/// Used by the executor's final sweep-down check — `SimClock` is cheap
/// to clone but the service does not otherwise expose its cores.
impl SimService {
    /// The clock the cores stamp events with.
    pub fn clock(&self) -> SimClock {
        self.cores
            .first()
            .map(|c| c.clock().clone())
            .unwrap_or_else(SimClock::manual)
    }
}
