//! The run report: per-client outcomes, chaos tallies, the merged
//! EVENTS JSONL, and the determinism fingerprint `repro sim --repeat`
//! and the CI seed sweep assert on.

use simrng::fnv1a;

use crate::chaos::ChaosTally;

/// One client's row in the report.
#[derive(Debug, Clone)]
pub struct ClientRow {
    /// Client index.
    pub id: usize,
    /// Session id (0 if open failed).
    pub sid: u64,
    /// `closed`, `lost`, or `error`.
    pub outcome: &'static str,
    /// Steps the service acknowledged.
    pub steps: u64,
    /// Final trace hash from `CLOSE` (closed clients only).
    pub trace: u64,
    /// Whether `VERIFY` said `verdict=consistent` (closed clients only).
    pub consistent: bool,
    /// The fault-free golden trace hash replayed from the client's spec
    /// (closed clients only).
    pub golden: u64,
    /// Frames the client sent.
    pub frames: u64,
}

/// Everything one simulation run produced.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// The run seed (replay key).
    pub seed: u64,
    /// Shards simulated.
    pub shards: usize,
    /// Whether chaos injection was on.
    pub chaos: bool,
    /// Per-client rows, in client order.
    pub rows: Vec<ClientRow>,
    /// Clients that closed their session cleanly.
    pub completed: usize,
    /// Clients whose session was lost to a crash or eviction.
    pub lost: usize,
    /// Clients that died to an unexpected error.
    pub errored: usize,
    /// Closed clients whose trace hash diverged from the golden replay.
    pub hash_mismatches: usize,
    /// Closed clients whose `VERIFY` verdict was not `consistent`.
    pub inconsistent: usize,
    /// Violations reported by the final service-wide `VERIFY`.
    pub violations: u64,
    /// Sessions the TTL sweeper evicted (from the final `INFO`).
    pub evicted: u64,
    /// Steps executed service-wide (from the final `INFO`).
    pub steps_total: u64,
    /// Shard restarts that completed.
    pub restarts: u64,
    /// What chaos injected.
    pub tally: ChaosTally,
    /// Virtual nanoseconds the run spanned.
    pub final_virtual_ns: u64,
    /// The merged `EVENTS` dump, one JSON object per line — the
    /// byte-identical artifact the determinism tests compare.
    pub events_jsonl: String,
}

impl SimReport {
    /// Whether the run upheld every invariant: no unexpected client
    /// errors, no trace-hash divergence from the golden replay, no PRAM
    /// violations, no garbage frame accepted — and, without chaos, no
    /// session lost at all.
    pub fn ok(&self) -> bool {
        self.errored == 0
            && self.hash_mismatches == 0
            && self.inconsistent == 0
            && self.violations == 0
            && self.tally.malformed_accepted == 0
            && (self.chaos || self.lost == 0)
    }

    /// A single hash over everything observable: the event log bytes
    /// and every client's `(sid, outcome, steps, trace)`. Two runs of
    /// the same seed must produce the same fingerprint.
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325;
        for byte in self.events_jsonl.as_bytes() {
            fnv1a(&mut h, u64::from(*byte));
        }
        for row in &self.rows {
            fnv1a(&mut h, row.sid);
            fnv1a(&mut h, row.outcome.len() as u64);
            fnv1a(&mut h, row.steps);
            fnv1a(&mut h, row.trace);
            fnv1a(&mut h, u64::from(row.consistent));
        }
        h
    }

    /// The report as one JSON object (the `--json-out` artifact). The
    /// event log is summarized by line count and fingerprint; the raw
    /// JSONL is written separately when a failure needs the full log.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"seed\":{},\"shards\":{},\"chaos\":{},\"clients\":{},\"completed\":{},\
             \"lost\":{},\"errored\":{},\"hash_mismatches\":{},\"inconsistent\":{},\
             \"violations\":{},\"evicted\":{},\"steps_total\":{},\"crashes\":{},\
             \"restarts\":{},\"queue_full\":{},\"malformed_rejected\":{},\
             \"malformed_accepted\":{},\"oversized_rejected\":{},\"stalls\":{},\
             \"virtual_ns\":{},\"events_lines\":{},\"fingerprint\":\"{:016x}\",\"ok\":{},\
             \"rows\":[",
            self.seed,
            self.shards,
            self.chaos,
            self.rows.len(),
            self.completed,
            self.lost,
            self.errored,
            self.hash_mismatches,
            self.inconsistent,
            self.violations,
            self.evicted,
            self.steps_total,
            self.tally.crashes,
            self.restarts,
            self.tally.queue_full,
            self.tally.malformed_rejected,
            self.tally.malformed_accepted,
            self.tally.oversized_rejected,
            self.tally.stalls,
            self.final_virtual_ns,
            self.events_jsonl.lines().count(),
            self.fingerprint(),
            self.ok(),
        );
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"id\":{},\"sid\":{},\"outcome\":\"{}\",\"steps\":{},\
                 \"trace\":\"{:016x}\",\"golden\":\"{:016x}\",\"consistent\":{},\"frames\":{}}}",
                row.id,
                row.sid,
                row.outcome,
                row.steps,
                row.trace,
                row.golden,
                row.consistent,
                row.frames,
            ));
        }
        out.push_str("]}");
        out
    }

    /// Human-readable summary (what `repro sim` prints).
    pub fn render(&self) -> String {
        let mut out = format!(
            "sim seed={} shards={} clients={} chaos={} virtual={:.3}ms\n\
             completed={} lost={} errored={} steps={} evicted={}\n\
             crashes={} restarts={} queue_full={} malformed={} oversized={} stalls={}\n\
             hash_mismatches={} inconsistent={} violations={} fingerprint={:016x} ok={}",
            self.seed,
            self.shards,
            self.rows.len(),
            self.chaos,
            self.final_virtual_ns as f64 / 1e6,
            self.completed,
            self.lost,
            self.errored,
            self.steps_total,
            self.evicted,
            self.tally.crashes,
            self.restarts,
            self.tally.queue_full,
            self.tally.malformed_rejected,
            self.tally.oversized_rejected,
            self.tally.stalls,
            self.hash_mismatches,
            self.inconsistent,
            self.violations,
            self.fingerprint(),
            self.ok(),
        );
        for row in &self.rows {
            out.push_str(&format!(
                "\n  client={} sid={} {} steps={} trace={:016x}{}",
                row.id,
                row.sid,
                row.outcome,
                row.steps,
                row.trace,
                if row.outcome == "closed" && row.trace != row.golden {
                    " GOLDEN-MISMATCH"
                } else {
                    ""
                },
            ));
        }
        out
    }
}
