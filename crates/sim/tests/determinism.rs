//! The simulation's two load-bearing properties, pinned:
//!
//! 1. **Determinism** — same seed, same everything: byte-identical
//!    merged EVENTS JSONL, identical per-client trace hashes and
//!    fingerprints, at 1 and 4 simulated shards, with and without chaos.
//! 2. **Chaos survivability** — a pinned corpus of seeds exercising the
//!    shard-crash, queue-full, malformed-frame, and eviction-race paths
//!    must leave every *surviving* session verify-clean with a trace
//!    hash equal to the fault-free single-threaded golden replay.
//!
//! The corpus seeds were chosen by sweeping and checking coverage; the
//! assertions below fail if a behavior change makes a seed stop
//! exercising its path (then re-sweep and re-pin, consciously).

use cr_sim::{run, SimConfig};

fn cfg(seed: u64, shards: usize, chaos: bool) -> SimConfig {
    SimConfig {
        seed,
        shards,
        chaos,
        ..SimConfig::default()
    }
}

#[test]
fn same_seed_same_bytes_at_one_and_four_shards() {
    for shards in [1usize, 4] {
        for chaos in [false, true] {
            let a = run(&cfg(7, shards, chaos));
            let b = run(&cfg(7, shards, chaos));
            assert_eq!(
                a.events_jsonl, b.events_jsonl,
                "events diverged (shards={shards} chaos={chaos})"
            );
            assert_eq!(
                a.fingerprint(),
                b.fingerprint(),
                "fingerprint diverged (shards={shards} chaos={chaos})"
            );
            let traces_a: Vec<(usize, u64)> = a.rows.iter().map(|r| (r.id, r.trace)).collect();
            let traces_b: Vec<(usize, u64)> = b.rows.iter().map(|r| (r.id, r.trace)).collect();
            assert_eq!(traces_a, traces_b, "shards={shards} chaos={chaos}");
        }
    }
}

#[test]
fn different_seeds_diverge() {
    let a = run(&cfg(7, 4, false));
    let b = run(&cfg(8, 4, false));
    assert_ne!(a.fingerprint(), b.fingerprint());
}

#[test]
fn trace_hashes_are_shard_count_invariant() {
    // A session's trace hash is a pure function of its spec and step
    // count — so the same seed at 1 shard and at 4 shards must close
    // every client with the same hash, even though the routing, the
    // interleaving, and the event log all differ.
    let one = run(&cfg(21, 1, false));
    let four = run(&cfg(21, 4, false));
    assert!(one.ok(), "{}", one.render());
    assert!(four.ok(), "{}", four.render());
    assert_eq!(one.completed, four.completed);
    let hashes = |r: &cr_sim::SimReport| -> Vec<(usize, u64)> {
        r.rows.iter().map(|row| (row.id, row.trace)).collect()
    };
    assert_eq!(hashes(&one), hashes(&four));
}

#[test]
fn quiet_runs_lose_nothing_and_match_golden() {
    for shards in [1usize, 2, 4] {
        let r = run(&cfg(11, shards, false));
        assert!(r.ok(), "{}", r.render());
        assert_eq!(r.completed, r.rows.len(), "{}", r.render());
        assert_eq!(r.lost + r.errored, 0);
        assert_eq!(r.hash_mismatches, 0);
        assert_eq!(r.inconsistent, 0);
        assert_eq!(r.violations, 0);
    }
}

/// The pinned chaos regression corpus. Each seed was verified to
/// exercise the paths asserted on; together they cover all four.
const CORPUS: &[u64] = &[1, 3, 4];

#[test]
fn chaos_corpus_survivors_stay_clean() {
    let mut crashes = 0u64;
    let mut queue_full = 0u64;
    let mut malformed = 0u64;
    let mut oversized = 0u64;
    let mut evicted = 0u64;
    for &seed in CORPUS {
        let r = run(&cfg(seed, 4, true));
        // The invariant: whatever chaos did, surviving sessions closed
        // with golden-matching hashes, consistent verdicts, zero PRAM
        // violations, and no garbage frame was ever accepted.
        assert!(r.ok(), "seed {seed}:\n{}", r.render());
        assert!(r.completed > 0, "seed {seed} had no survivors to check");
        // Crashed shards must all have come back.
        assert_eq!(r.restarts, r.tally.crashes, "seed {seed}");
        // The event log must actually record the injected faults.
        let crash_events = r.events_jsonl.matches("\"kind\":\"crash\"").count() as u64;
        let qf_events = r.events_jsonl.matches("\"kind\":\"queue_full\"").count() as u64;
        assert_eq!(crash_events, r.tally.crashes, "seed {seed}");
        assert_eq!(qf_events, r.tally.queue_full, "seed {seed}");
        crashes += r.tally.crashes;
        queue_full += r.tally.queue_full;
        malformed += r.tally.malformed_rejected;
        oversized += r.tally.oversized_rejected;
        evicted += r.evicted;
    }
    // Corpus-wide coverage: every chaos path actually fired.
    assert!(crashes > 0, "corpus never crashed a shard");
    assert!(queue_full > 0, "corpus never saturated a queue");
    assert!(malformed > 0, "corpus never flooded the parser");
    assert!(oversized > 0, "corpus never sent an oversized frame");
    assert!(evicted > 0, "corpus never raced the TTL sweeper");
}

#[test]
fn chaos_runs_are_replayable() {
    for &seed in CORPUS {
        let a = run(&cfg(seed, 4, true));
        let b = run(&cfg(seed, 4, true));
        assert_eq!(a.events_jsonl, b.events_jsonl, "seed {seed}");
        assert_eq!(a.fingerprint(), b.fingerprint(), "seed {seed}");
    }
}
