/root/repo/target/release/examples/list_ranking-4996c4f941eb10cd.d: examples/list_ranking.rs

/root/repo/target/release/examples/list_ranking-4996c4f941eb10cd: examples/list_ranking.rs

examples/list_ranking.rs:
