/root/repo/target/release/examples/matvec_2dmot-290d2a9d466408f4.d: examples/matvec_2dmot.rs

/root/repo/target/release/examples/matvec_2dmot-290d2a9d466408f4: examples/matvec_2dmot.rs

examples/matvec_2dmot.rs:
