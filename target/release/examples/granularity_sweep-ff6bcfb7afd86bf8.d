/root/repo/target/release/examples/granularity_sweep-ff6bcfb7afd86bf8.d: examples/granularity_sweep.rs

/root/repo/target/release/examples/granularity_sweep-ff6bcfb7afd86bf8: examples/granularity_sweep.rs

examples/granularity_sweep.rs:
