/root/repo/target/release/examples/ida_fault_tolerance-50fce07c4de9636b.d: examples/ida_fault_tolerance.rs

/root/repo/target/release/examples/ida_fault_tolerance-50fce07c4de9636b: examples/ida_fault_tolerance.rs

examples/ida_fault_tolerance.rs:
