/root/repo/target/release/examples/quickstart-0f05864e7f13d8ab.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-0f05864e7f13d8ab: examples/quickstart.rs

examples/quickstart.rs:
