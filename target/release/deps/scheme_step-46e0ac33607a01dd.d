/root/repo/target/release/deps/scheme_step-46e0ac33607a01dd.d: crates/bench/benches/scheme_step.rs

/root/repo/target/release/deps/scheme_step-46e0ac33607a01dd: crates/bench/benches/scheme_step.rs

crates/bench/benches/scheme_step.rs:
