/root/repo/target/release/deps/memdist-e82d6ab1b01fd52b.d: crates/memdist/src/lib.rs crates/memdist/src/cluster.rs crates/memdist/src/expansion.rs crates/memdist/src/map.rs crates/memdist/src/store.rs

/root/repo/target/release/deps/libmemdist-e82d6ab1b01fd52b.rlib: crates/memdist/src/lib.rs crates/memdist/src/cluster.rs crates/memdist/src/expansion.rs crates/memdist/src/map.rs crates/memdist/src/store.rs

/root/repo/target/release/deps/libmemdist-e82d6ab1b01fd52b.rmeta: crates/memdist/src/lib.rs crates/memdist/src/cluster.rs crates/memdist/src/expansion.rs crates/memdist/src/map.rs crates/memdist/src/store.rs

crates/memdist/src/lib.rs:
crates/memdist/src/cluster.rs:
crates/memdist/src/expansion.rs:
crates/memdist/src/map.rs:
crates/memdist/src/store.rs:
