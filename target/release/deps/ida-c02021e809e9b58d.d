/root/repo/target/release/deps/ida-c02021e809e9b58d.d: crates/ida/src/lib.rs crates/ida/src/codec.rs crates/ida/src/store.rs

/root/repo/target/release/deps/libida-c02021e809e9b58d.rlib: crates/ida/src/lib.rs crates/ida/src/codec.rs crates/ida/src/store.rs

/root/repo/target/release/deps/libida-c02021e809e9b58d.rmeta: crates/ida/src/lib.rs crates/ida/src/codec.rs crates/ida/src/store.rs

crates/ida/src/lib.rs:
crates/ida/src/codec.rs:
crates/ida/src/store.rs:
