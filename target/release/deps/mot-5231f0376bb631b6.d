/root/repo/target/release/deps/mot-5231f0376bb631b6.d: crates/mot/src/lib.rs crates/mot/src/area.rs crates/mot/src/network.rs crates/mot/src/primitives.rs crates/mot/src/topology.rs

/root/repo/target/release/deps/libmot-5231f0376bb631b6.rlib: crates/mot/src/lib.rs crates/mot/src/area.rs crates/mot/src/network.rs crates/mot/src/primitives.rs crates/mot/src/topology.rs

/root/repo/target/release/deps/libmot-5231f0376bb631b6.rmeta: crates/mot/src/lib.rs crates/mot/src/area.rs crates/mot/src/network.rs crates/mot/src/primitives.rs crates/mot/src/topology.rs

crates/mot/src/lib.rs:
crates/mot/src/area.rs:
crates/mot/src/network.rs:
crates/mot/src/primitives.rs:
crates/mot/src/topology.rs:
