/root/repo/target/release/deps/repro-a6a050f17e9fe5f2.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-a6a050f17e9fe5f2: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
