/root/repo/target/release/deps/memdist_ops-ef6555ec5c4c0283.d: crates/bench/benches/memdist_ops.rs

/root/repo/target/release/deps/memdist_ops-ef6555ec5c4c0283: crates/bench/benches/memdist_ops.rs

crates/bench/benches/memdist_ops.rs:
