/root/repo/target/release/deps/pram_bench-7fa2ab9e2fd7d7ec.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs

/root/repo/target/release/deps/libpram_bench-7fa2ab9e2fd7d7ec.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs

/root/repo/target/release/deps/libpram_bench-7fa2ab9e2fd7d7ec.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
