/root/repo/target/release/deps/pram_machine-2aba1a9c7d5178d4.d: crates/pram-machine/src/lib.rs crates/pram-machine/src/instr.rs crates/pram-machine/src/machine.rs crates/pram-machine/src/memory.rs crates/pram-machine/src/program.rs crates/pram-machine/src/programs.rs crates/pram-machine/src/types.rs

/root/repo/target/release/deps/libpram_machine-2aba1a9c7d5178d4.rlib: crates/pram-machine/src/lib.rs crates/pram-machine/src/instr.rs crates/pram-machine/src/machine.rs crates/pram-machine/src/memory.rs crates/pram-machine/src/program.rs crates/pram-machine/src/programs.rs crates/pram-machine/src/types.rs

/root/repo/target/release/deps/libpram_machine-2aba1a9c7d5178d4.rmeta: crates/pram-machine/src/lib.rs crates/pram-machine/src/instr.rs crates/pram-machine/src/machine.rs crates/pram-machine/src/memory.rs crates/pram-machine/src/program.rs crates/pram-machine/src/programs.rs crates/pram-machine/src/types.rs

crates/pram-machine/src/lib.rs:
crates/pram-machine/src/instr.rs:
crates/pram-machine/src/machine.rs:
crates/pram-machine/src/memory.rs:
crates/pram-machine/src/program.rs:
crates/pram-machine/src/programs.rs:
crates/pram-machine/src/types.rs:
