/root/repo/target/release/deps/pramsim-bf32adf3b9f3f32a.d: src/lib.rs

/root/repo/target/release/deps/libpramsim-bf32adf3b9f3f32a.rlib: src/lib.rs

/root/repo/target/release/deps/libpramsim-bf32adf3b9f3f32a.rmeta: src/lib.rs

src/lib.rs:
