/root/repo/target/release/deps/netsim-5f4678d62ab2bafa.d: crates/netsim/src/lib.rs

/root/repo/target/release/deps/libnetsim-5f4678d62ab2bafa.rlib: crates/netsim/src/lib.rs

/root/repo/target/release/deps/libnetsim-5f4678d62ab2bafa.rmeta: crates/netsim/src/lib.rs

crates/netsim/src/lib.rs:
