/root/repo/target/release/deps/pram_bench-a6f19cd03016b206.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs

/root/repo/target/release/deps/pram_bench-a6f19cd03016b206: crates/bench/src/lib.rs crates/bench/src/experiments.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
