/root/repo/target/release/deps/cr_core-7cf09214370bf617.d: crates/core/src/lib.rs crates/core/src/adversary.rs crates/core/src/config.rs crates/core/src/executors.rs crates/core/src/hashed.rs crates/core/src/ida_scheme.rs crates/core/src/majority.rs crates/core/src/protocol.rs crates/core/src/scheme.rs crates/core/src/schemes.rs

/root/repo/target/release/deps/libcr_core-7cf09214370bf617.rlib: crates/core/src/lib.rs crates/core/src/adversary.rs crates/core/src/config.rs crates/core/src/executors.rs crates/core/src/hashed.rs crates/core/src/ida_scheme.rs crates/core/src/majority.rs crates/core/src/protocol.rs crates/core/src/scheme.rs crates/core/src/schemes.rs

/root/repo/target/release/deps/libcr_core-7cf09214370bf617.rmeta: crates/core/src/lib.rs crates/core/src/adversary.rs crates/core/src/config.rs crates/core/src/executors.rs crates/core/src/hashed.rs crates/core/src/ida_scheme.rs crates/core/src/majority.rs crates/core/src/protocol.rs crates/core/src/scheme.rs crates/core/src/schemes.rs

crates/core/src/lib.rs:
crates/core/src/adversary.rs:
crates/core/src/config.rs:
crates/core/src/executors.rs:
crates/core/src/hashed.rs:
crates/core/src/ida_scheme.rs:
crates/core/src/majority.rs:
crates/core/src/protocol.rs:
crates/core/src/scheme.rs:
crates/core/src/schemes.rs:
