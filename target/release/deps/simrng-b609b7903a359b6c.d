/root/repo/target/release/deps/simrng-b609b7903a359b6c.d: crates/simrng/src/lib.rs crates/simrng/src/splitmix.rs crates/simrng/src/xoshiro.rs

/root/repo/target/release/deps/libsimrng-b609b7903a359b6c.rlib: crates/simrng/src/lib.rs crates/simrng/src/splitmix.rs crates/simrng/src/xoshiro.rs

/root/repo/target/release/deps/libsimrng-b609b7903a359b6c.rmeta: crates/simrng/src/lib.rs crates/simrng/src/splitmix.rs crates/simrng/src/xoshiro.rs

crates/simrng/src/lib.rs:
crates/simrng/src/splitmix.rs:
crates/simrng/src/xoshiro.rs:
