/root/repo/target/release/deps/galois-a0b606d7d9f3efc3.d: crates/galois/src/lib.rs crates/galois/src/matrix.rs

/root/repo/target/release/deps/libgalois-a0b606d7d9f3efc3.rlib: crates/galois/src/lib.rs crates/galois/src/matrix.rs

/root/repo/target/release/deps/libgalois-a0b606d7d9f3efc3.rmeta: crates/galois/src/lib.rs crates/galois/src/matrix.rs

crates/galois/src/lib.rs:
crates/galois/src/matrix.rs:
