/root/repo/target/release/deps/workloads-94acc2dcc6b66219.d: crates/workloads/src/lib.rs

/root/repo/target/release/deps/libworkloads-94acc2dcc6b66219.rlib: crates/workloads/src/lib.rs

/root/repo/target/release/deps/libworkloads-94acc2dcc6b66219.rmeta: crates/workloads/src/lib.rs

crates/workloads/src/lib.rs:
