/root/repo/target/release/deps/ida_codec-ded0f0ffbf839edf.d: crates/bench/benches/ida_codec.rs

/root/repo/target/release/deps/ida_codec-ded0f0ffbf839edf: crates/bench/benches/ida_codec.rs

crates/bench/benches/ida_codec.rs:
