/root/repo/target/release/deps/metrics-cc5956d606d2de7e.d: crates/metrics/src/lib.rs

/root/repo/target/release/deps/libmetrics-cc5956d606d2de7e.rlib: crates/metrics/src/lib.rs

/root/repo/target/release/deps/libmetrics-cc5956d606d2de7e.rmeta: crates/metrics/src/lib.rs

crates/metrics/src/lib.rs:
