/root/repo/target/release/deps/models-9ba87acee64e7898.d: crates/models/src/lib.rs crates/models/src/params.rs

/root/repo/target/release/deps/libmodels-9ba87acee64e7898.rlib: crates/models/src/lib.rs crates/models/src/params.rs

/root/repo/target/release/deps/libmodels-9ba87acee64e7898.rmeta: crates/models/src/lib.rs crates/models/src/params.rs

crates/models/src/lib.rs:
crates/models/src/params.rs:
