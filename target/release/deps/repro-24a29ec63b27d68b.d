/root/repo/target/release/deps/repro-24a29ec63b27d68b.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-24a29ec63b27d68b: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
