/root/repo/target/release/deps/galois_ops-a4d498bf23916d82.d: crates/bench/benches/galois_ops.rs

/root/repo/target/release/deps/galois_ops-a4d498bf23916d82: crates/bench/benches/galois_ops.rs

crates/bench/benches/galois_ops.rs:
