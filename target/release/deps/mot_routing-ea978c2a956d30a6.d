/root/repo/target/release/deps/mot_routing-ea978c2a956d30a6.d: crates/bench/benches/mot_routing.rs

/root/repo/target/release/deps/mot_routing-ea978c2a956d30a6: crates/bench/benches/mot_routing.rs

crates/bench/benches/mot_routing.rs:
