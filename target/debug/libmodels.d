/root/repo/target/debug/libmodels.rlib: /root/repo/crates/models/src/lib.rs /root/repo/crates/models/src/params.rs
