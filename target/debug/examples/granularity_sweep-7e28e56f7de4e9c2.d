/root/repo/target/debug/examples/granularity_sweep-7e28e56f7de4e9c2.d: examples/granularity_sweep.rs Cargo.toml

/root/repo/target/debug/examples/libgranularity_sweep-7e28e56f7de4e9c2.rmeta: examples/granularity_sweep.rs Cargo.toml

examples/granularity_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
