/root/repo/target/debug/examples/ida_fault_tolerance-70ba060ca61ad6f6.d: examples/ida_fault_tolerance.rs Cargo.toml

/root/repo/target/debug/examples/libida_fault_tolerance-70ba060ca61ad6f6.rmeta: examples/ida_fault_tolerance.rs Cargo.toml

examples/ida_fault_tolerance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
