/root/repo/target/debug/examples/list_ranking-fca567b82a6de948.d: examples/list_ranking.rs

/root/repo/target/debug/examples/list_ranking-fca567b82a6de948: examples/list_ranking.rs

examples/list_ranking.rs:
