/root/repo/target/debug/examples/ida_fault_tolerance-97459375f4d34030.d: examples/ida_fault_tolerance.rs

/root/repo/target/debug/examples/ida_fault_tolerance-97459375f4d34030: examples/ida_fault_tolerance.rs

examples/ida_fault_tolerance.rs:
