/root/repo/target/debug/examples/granularity_sweep-30e0979c0870e0f8.d: examples/granularity_sweep.rs

/root/repo/target/debug/examples/granularity_sweep-30e0979c0870e0f8: examples/granularity_sweep.rs

examples/granularity_sweep.rs:
