/root/repo/target/debug/examples/list_ranking-b4d3a89c5ddcefdd.d: examples/list_ranking.rs Cargo.toml

/root/repo/target/debug/examples/liblist_ranking-b4d3a89c5ddcefdd.rmeta: examples/list_ranking.rs Cargo.toml

examples/list_ranking.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
