/root/repo/target/debug/examples/matvec_2dmot-4e61bd9b3420809c.d: examples/matvec_2dmot.rs Cargo.toml

/root/repo/target/debug/examples/libmatvec_2dmot-4e61bd9b3420809c.rmeta: examples/matvec_2dmot.rs Cargo.toml

examples/matvec_2dmot.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
