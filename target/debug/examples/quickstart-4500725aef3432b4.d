/root/repo/target/debug/examples/quickstart-4500725aef3432b4.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-4500725aef3432b4: examples/quickstart.rs

examples/quickstart.rs:
