/root/repo/target/debug/examples/matvec_2dmot-7e93b49c84ea99cd.d: examples/matvec_2dmot.rs

/root/repo/target/debug/examples/matvec_2dmot-7e93b49c84ea99cd: examples/matvec_2dmot.rs

examples/matvec_2dmot.rs:
