/root/repo/target/debug/libgalois.rlib: /root/repo/crates/galois/src/lib.rs /root/repo/crates/galois/src/matrix.rs
