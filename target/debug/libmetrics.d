/root/repo/target/debug/libmetrics.rlib: /root/repo/crates/metrics/src/lib.rs
