/root/repo/target/debug/libsimrng.rlib: /root/repo/crates/simrng/src/lib.rs /root/repo/crates/simrng/src/splitmix.rs /root/repo/crates/simrng/src/xoshiro.rs
