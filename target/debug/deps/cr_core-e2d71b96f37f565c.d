/root/repo/target/debug/deps/cr_core-e2d71b96f37f565c.d: crates/core/src/lib.rs crates/core/src/adversary.rs crates/core/src/config.rs crates/core/src/executors.rs crates/core/src/hashed.rs crates/core/src/ida_scheme.rs crates/core/src/majority.rs crates/core/src/protocol.rs crates/core/src/scheme.rs crates/core/src/schemes.rs Cargo.toml

/root/repo/target/debug/deps/libcr_core-e2d71b96f37f565c.rmeta: crates/core/src/lib.rs crates/core/src/adversary.rs crates/core/src/config.rs crates/core/src/executors.rs crates/core/src/hashed.rs crates/core/src/ida_scheme.rs crates/core/src/majority.rs crates/core/src/protocol.rs crates/core/src/scheme.rs crates/core/src/schemes.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/adversary.rs:
crates/core/src/config.rs:
crates/core/src/executors.rs:
crates/core/src/hashed.rs:
crates/core/src/ida_scheme.rs:
crates/core/src/majority.rs:
crates/core/src/protocol.rs:
crates/core/src/scheme.rs:
crates/core/src/schemes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
