/root/repo/target/debug/deps/repro-672d7a7990dc3c0a.d: crates/bench/src/bin/repro.rs Cargo.toml

/root/repo/target/debug/deps/librepro-672d7a7990dc3c0a.rmeta: crates/bench/src/bin/repro.rs Cargo.toml

crates/bench/src/bin/repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
