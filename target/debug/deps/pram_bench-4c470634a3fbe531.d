/root/repo/target/debug/deps/pram_bench-4c470634a3fbe531.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs

/root/repo/target/debug/deps/pram_bench-4c470634a3fbe531: crates/bench/src/lib.rs crates/bench/src/experiments.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
