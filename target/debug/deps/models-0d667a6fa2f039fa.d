/root/repo/target/debug/deps/models-0d667a6fa2f039fa.d: crates/models/src/lib.rs crates/models/src/params.rs

/root/repo/target/debug/deps/models-0d667a6fa2f039fa: crates/models/src/lib.rs crates/models/src/params.rs

crates/models/src/lib.rs:
crates/models/src/params.rs:
