/root/repo/target/debug/deps/galois-90b7b888b772a154.d: crates/galois/src/lib.rs crates/galois/src/matrix.rs Cargo.toml

/root/repo/target/debug/deps/libgalois-90b7b888b772a154.rmeta: crates/galois/src/lib.rs crates/galois/src/matrix.rs Cargo.toml

crates/galois/src/lib.rs:
crates/galois/src/matrix.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
