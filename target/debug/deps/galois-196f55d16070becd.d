/root/repo/target/debug/deps/galois-196f55d16070becd.d: crates/galois/src/lib.rs crates/galois/src/matrix.rs

/root/repo/target/debug/deps/libgalois-196f55d16070becd.rlib: crates/galois/src/lib.rs crates/galois/src/matrix.rs

/root/repo/target/debug/deps/libgalois-196f55d16070becd.rmeta: crates/galois/src/lib.rs crates/galois/src/matrix.rs

crates/galois/src/lib.rs:
crates/galois/src/matrix.rs:
