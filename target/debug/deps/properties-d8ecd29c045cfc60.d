/root/repo/target/debug/deps/properties-d8ecd29c045cfc60.d: tests/properties.rs

/root/repo/target/debug/deps/properties-d8ecd29c045cfc60: tests/properties.rs

tests/properties.rs:
