/root/repo/target/debug/deps/galois-74870ddfe86b1262.d: crates/galois/src/lib.rs crates/galois/src/matrix.rs

/root/repo/target/debug/deps/galois-74870ddfe86b1262: crates/galois/src/lib.rs crates/galois/src/matrix.rs

crates/galois/src/lib.rs:
crates/galois/src/matrix.rs:
