/root/repo/target/debug/deps/scheme_step-006708a7ea23a0eb.d: crates/bench/benches/scheme_step.rs Cargo.toml

/root/repo/target/debug/deps/libscheme_step-006708a7ea23a0eb.rmeta: crates/bench/benches/scheme_step.rs Cargo.toml

crates/bench/benches/scheme_step.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
