/root/repo/target/debug/deps/cr_core-0e0d3004596cca17.d: crates/core/src/lib.rs crates/core/src/adversary.rs crates/core/src/config.rs crates/core/src/executors.rs crates/core/src/hashed.rs crates/core/src/ida_scheme.rs crates/core/src/majority.rs crates/core/src/protocol.rs crates/core/src/scheme.rs crates/core/src/schemes.rs

/root/repo/target/debug/deps/cr_core-0e0d3004596cca17: crates/core/src/lib.rs crates/core/src/adversary.rs crates/core/src/config.rs crates/core/src/executors.rs crates/core/src/hashed.rs crates/core/src/ida_scheme.rs crates/core/src/majority.rs crates/core/src/protocol.rs crates/core/src/scheme.rs crates/core/src/schemes.rs

crates/core/src/lib.rs:
crates/core/src/adversary.rs:
crates/core/src/config.rs:
crates/core/src/executors.rs:
crates/core/src/hashed.rs:
crates/core/src/ida_scheme.rs:
crates/core/src/majority.rs:
crates/core/src/protocol.rs:
crates/core/src/scheme.rs:
crates/core/src/schemes.rs:
