/root/repo/target/debug/deps/metrics-632417d4a48c48f7.d: crates/metrics/src/lib.rs

/root/repo/target/debug/deps/libmetrics-632417d4a48c48f7.rlib: crates/metrics/src/lib.rs

/root/repo/target/debug/deps/libmetrics-632417d4a48c48f7.rmeta: crates/metrics/src/lib.rs

crates/metrics/src/lib.rs:
