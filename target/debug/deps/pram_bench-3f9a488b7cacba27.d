/root/repo/target/debug/deps/pram_bench-3f9a488b7cacba27.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs Cargo.toml

/root/repo/target/debug/deps/libpram_bench-3f9a488b7cacba27.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
