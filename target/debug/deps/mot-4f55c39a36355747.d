/root/repo/target/debug/deps/mot-4f55c39a36355747.d: crates/mot/src/lib.rs crates/mot/src/area.rs crates/mot/src/network.rs crates/mot/src/primitives.rs crates/mot/src/topology.rs Cargo.toml

/root/repo/target/debug/deps/libmot-4f55c39a36355747.rmeta: crates/mot/src/lib.rs crates/mot/src/area.rs crates/mot/src/network.rs crates/mot/src/primitives.rs crates/mot/src/topology.rs Cargo.toml

crates/mot/src/lib.rs:
crates/mot/src/area.rs:
crates/mot/src/network.rs:
crates/mot/src/primitives.rs:
crates/mot/src/topology.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
