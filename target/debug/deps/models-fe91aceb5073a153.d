/root/repo/target/debug/deps/models-fe91aceb5073a153.d: crates/models/src/lib.rs crates/models/src/params.rs Cargo.toml

/root/repo/target/debug/deps/libmodels-fe91aceb5073a153.rmeta: crates/models/src/lib.rs crates/models/src/params.rs Cargo.toml

crates/models/src/lib.rs:
crates/models/src/params.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
