/root/repo/target/debug/deps/ida_codec-542b7736facff284.d: crates/bench/benches/ida_codec.rs

/root/repo/target/debug/deps/ida_codec-542b7736facff284: crates/bench/benches/ida_codec.rs

crates/bench/benches/ida_codec.rs:
