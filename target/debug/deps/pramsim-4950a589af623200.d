/root/repo/target/debug/deps/pramsim-4950a589af623200.d: src/lib.rs

/root/repo/target/debug/deps/libpramsim-4950a589af623200.rlib: src/lib.rs

/root/repo/target/debug/deps/libpramsim-4950a589af623200.rmeta: src/lib.rs

src/lib.rs:
