/root/repo/target/debug/deps/metrics-9649c244937305c3.d: crates/metrics/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmetrics-9649c244937305c3.rmeta: crates/metrics/src/lib.rs Cargo.toml

crates/metrics/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
