/root/repo/target/debug/deps/ida-f16664d2ba21db5c.d: crates/ida/src/lib.rs crates/ida/src/codec.rs crates/ida/src/store.rs

/root/repo/target/debug/deps/ida-f16664d2ba21db5c: crates/ida/src/lib.rs crates/ida/src/codec.rs crates/ida/src/store.rs

crates/ida/src/lib.rs:
crates/ida/src/codec.rs:
crates/ida/src/store.rs:
