/root/repo/target/debug/deps/ida-2a6b4a0106ed7bad.d: crates/ida/src/lib.rs crates/ida/src/codec.rs crates/ida/src/store.rs Cargo.toml

/root/repo/target/debug/deps/libida-2a6b4a0106ed7bad.rmeta: crates/ida/src/lib.rs crates/ida/src/codec.rs crates/ida/src/store.rs Cargo.toml

crates/ida/src/lib.rs:
crates/ida/src/codec.rs:
crates/ida/src/store.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
