/root/repo/target/debug/deps/pram_machine-e220efb365548493.d: crates/pram-machine/src/lib.rs crates/pram-machine/src/instr.rs crates/pram-machine/src/machine.rs crates/pram-machine/src/memory.rs crates/pram-machine/src/program.rs crates/pram-machine/src/programs.rs crates/pram-machine/src/types.rs

/root/repo/target/debug/deps/libpram_machine-e220efb365548493.rlib: crates/pram-machine/src/lib.rs crates/pram-machine/src/instr.rs crates/pram-machine/src/machine.rs crates/pram-machine/src/memory.rs crates/pram-machine/src/program.rs crates/pram-machine/src/programs.rs crates/pram-machine/src/types.rs

/root/repo/target/debug/deps/libpram_machine-e220efb365548493.rmeta: crates/pram-machine/src/lib.rs crates/pram-machine/src/instr.rs crates/pram-machine/src/machine.rs crates/pram-machine/src/memory.rs crates/pram-machine/src/program.rs crates/pram-machine/src/programs.rs crates/pram-machine/src/types.rs

crates/pram-machine/src/lib.rs:
crates/pram-machine/src/instr.rs:
crates/pram-machine/src/machine.rs:
crates/pram-machine/src/memory.rs:
crates/pram-machine/src/program.rs:
crates/pram-machine/src/programs.rs:
crates/pram-machine/src/types.rs:
