/root/repo/target/debug/deps/simrng-3d3161e409517760.d: crates/simrng/src/lib.rs crates/simrng/src/splitmix.rs crates/simrng/src/xoshiro.rs

/root/repo/target/debug/deps/simrng-3d3161e409517760: crates/simrng/src/lib.rs crates/simrng/src/splitmix.rs crates/simrng/src/xoshiro.rs

crates/simrng/src/lib.rs:
crates/simrng/src/splitmix.rs:
crates/simrng/src/xoshiro.rs:
