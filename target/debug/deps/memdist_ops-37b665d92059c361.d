/root/repo/target/debug/deps/memdist_ops-37b665d92059c361.d: crates/bench/benches/memdist_ops.rs

/root/repo/target/debug/deps/memdist_ops-37b665d92059c361: crates/bench/benches/memdist_ops.rs

crates/bench/benches/memdist_ops.rs:
