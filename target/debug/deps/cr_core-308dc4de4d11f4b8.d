/root/repo/target/debug/deps/cr_core-308dc4de4d11f4b8.d: crates/core/src/lib.rs crates/core/src/adversary.rs crates/core/src/config.rs crates/core/src/executors.rs crates/core/src/hashed.rs crates/core/src/ida_scheme.rs crates/core/src/majority.rs crates/core/src/protocol.rs crates/core/src/scheme.rs crates/core/src/schemes.rs

/root/repo/target/debug/deps/libcr_core-308dc4de4d11f4b8.rlib: crates/core/src/lib.rs crates/core/src/adversary.rs crates/core/src/config.rs crates/core/src/executors.rs crates/core/src/hashed.rs crates/core/src/ida_scheme.rs crates/core/src/majority.rs crates/core/src/protocol.rs crates/core/src/scheme.rs crates/core/src/schemes.rs

/root/repo/target/debug/deps/libcr_core-308dc4de4d11f4b8.rmeta: crates/core/src/lib.rs crates/core/src/adversary.rs crates/core/src/config.rs crates/core/src/executors.rs crates/core/src/hashed.rs crates/core/src/ida_scheme.rs crates/core/src/majority.rs crates/core/src/protocol.rs crates/core/src/scheme.rs crates/core/src/schemes.rs

crates/core/src/lib.rs:
crates/core/src/adversary.rs:
crates/core/src/config.rs:
crates/core/src/executors.rs:
crates/core/src/hashed.rs:
crates/core/src/ida_scheme.rs:
crates/core/src/majority.rs:
crates/core/src/protocol.rs:
crates/core/src/scheme.rs:
crates/core/src/schemes.rs:
