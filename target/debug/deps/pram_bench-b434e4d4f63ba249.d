/root/repo/target/debug/deps/pram_bench-b434e4d4f63ba249.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs

/root/repo/target/debug/deps/libpram_bench-b434e4d4f63ba249.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs

/root/repo/target/debug/deps/libpram_bench-b434e4d4f63ba249.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
