/root/repo/target/debug/deps/repro-2c35b789206de33d.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-2c35b789206de33d: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
