/root/repo/target/debug/deps/simrng-8dad2e79a76634a5.d: crates/simrng/src/lib.rs crates/simrng/src/splitmix.rs crates/simrng/src/xoshiro.rs Cargo.toml

/root/repo/target/debug/deps/libsimrng-8dad2e79a76634a5.rmeta: crates/simrng/src/lib.rs crates/simrng/src/splitmix.rs crates/simrng/src/xoshiro.rs Cargo.toml

crates/simrng/src/lib.rs:
crates/simrng/src/splitmix.rs:
crates/simrng/src/xoshiro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
