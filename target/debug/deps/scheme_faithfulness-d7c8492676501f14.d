/root/repo/target/debug/deps/scheme_faithfulness-d7c8492676501f14.d: tests/scheme_faithfulness.rs

/root/repo/target/debug/deps/scheme_faithfulness-d7c8492676501f14: tests/scheme_faithfulness.rs

tests/scheme_faithfulness.rs:
