/root/repo/target/debug/deps/pram_bench-c724a22ff7b9ffb9.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs Cargo.toml

/root/repo/target/debug/deps/libpram_bench-c724a22ff7b9ffb9.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
