/root/repo/target/debug/deps/repro-9cdf545714493fb0.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-9cdf545714493fb0: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
