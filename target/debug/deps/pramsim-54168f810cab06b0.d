/root/repo/target/debug/deps/pramsim-54168f810cab06b0.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpramsim-54168f810cab06b0.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
