/root/repo/target/debug/deps/mot-f90fd1de098107e1.d: crates/mot/src/lib.rs crates/mot/src/area.rs crates/mot/src/network.rs crates/mot/src/primitives.rs crates/mot/src/topology.rs Cargo.toml

/root/repo/target/debug/deps/libmot-f90fd1de098107e1.rmeta: crates/mot/src/lib.rs crates/mot/src/area.rs crates/mot/src/network.rs crates/mot/src/primitives.rs crates/mot/src/topology.rs Cargo.toml

crates/mot/src/lib.rs:
crates/mot/src/area.rs:
crates/mot/src/network.rs:
crates/mot/src/primitives.rs:
crates/mot/src/topology.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
