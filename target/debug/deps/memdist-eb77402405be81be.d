/root/repo/target/debug/deps/memdist-eb77402405be81be.d: crates/memdist/src/lib.rs crates/memdist/src/cluster.rs crates/memdist/src/expansion.rs crates/memdist/src/map.rs crates/memdist/src/store.rs

/root/repo/target/debug/deps/memdist-eb77402405be81be: crates/memdist/src/lib.rs crates/memdist/src/cluster.rs crates/memdist/src/expansion.rs crates/memdist/src/map.rs crates/memdist/src/store.rs

crates/memdist/src/lib.rs:
crates/memdist/src/cluster.rs:
crates/memdist/src/expansion.rs:
crates/memdist/src/map.rs:
crates/memdist/src/store.rs:
