/root/repo/target/debug/deps/workloads-fb885b309af9b887.d: crates/workloads/src/lib.rs

/root/repo/target/debug/deps/workloads-fb885b309af9b887: crates/workloads/src/lib.rs

crates/workloads/src/lib.rs:
