/root/repo/target/debug/deps/pramsim-156991f681fe7562.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpramsim-156991f681fe7562.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
