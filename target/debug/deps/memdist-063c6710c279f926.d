/root/repo/target/debug/deps/memdist-063c6710c279f926.d: crates/memdist/src/lib.rs crates/memdist/src/cluster.rs crates/memdist/src/expansion.rs crates/memdist/src/map.rs crates/memdist/src/store.rs Cargo.toml

/root/repo/target/debug/deps/libmemdist-063c6710c279f926.rmeta: crates/memdist/src/lib.rs crates/memdist/src/cluster.rs crates/memdist/src/expansion.rs crates/memdist/src/map.rs crates/memdist/src/store.rs Cargo.toml

crates/memdist/src/lib.rs:
crates/memdist/src/cluster.rs:
crates/memdist/src/expansion.rs:
crates/memdist/src/map.rs:
crates/memdist/src/store.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
