/root/repo/target/debug/deps/pramsim-b56af63820e77a04.d: src/lib.rs

/root/repo/target/debug/deps/pramsim-b56af63820e77a04: src/lib.rs

src/lib.rs:
