/root/repo/target/debug/deps/scheme_step-98603ca3732ae377.d: crates/bench/benches/scheme_step.rs

/root/repo/target/debug/deps/scheme_step-98603ca3732ae377: crates/bench/benches/scheme_step.rs

crates/bench/benches/scheme_step.rs:
