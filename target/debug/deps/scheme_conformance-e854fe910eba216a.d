/root/repo/target/debug/deps/scheme_conformance-e854fe910eba216a.d: tests/scheme_conformance.rs Cargo.toml

/root/repo/target/debug/deps/libscheme_conformance-e854fe910eba216a.rmeta: tests/scheme_conformance.rs Cargo.toml

tests/scheme_conformance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
