/root/repo/target/debug/deps/metrics-b2045021831e5cbd.d: crates/metrics/src/lib.rs

/root/repo/target/debug/deps/metrics-b2045021831e5cbd: crates/metrics/src/lib.rs

crates/metrics/src/lib.rs:
