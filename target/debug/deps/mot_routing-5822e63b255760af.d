/root/repo/target/debug/deps/mot_routing-5822e63b255760af.d: crates/bench/benches/mot_routing.rs

/root/repo/target/debug/deps/mot_routing-5822e63b255760af: crates/bench/benches/mot_routing.rs

crates/bench/benches/mot_routing.rs:
