/root/repo/target/debug/deps/pram_machine-24d4ab27f2c6253d.d: crates/pram-machine/src/lib.rs crates/pram-machine/src/instr.rs crates/pram-machine/src/machine.rs crates/pram-machine/src/memory.rs crates/pram-machine/src/program.rs crates/pram-machine/src/programs.rs crates/pram-machine/src/types.rs Cargo.toml

/root/repo/target/debug/deps/libpram_machine-24d4ab27f2c6253d.rmeta: crates/pram-machine/src/lib.rs crates/pram-machine/src/instr.rs crates/pram-machine/src/machine.rs crates/pram-machine/src/memory.rs crates/pram-machine/src/program.rs crates/pram-machine/src/programs.rs crates/pram-machine/src/types.rs Cargo.toml

crates/pram-machine/src/lib.rs:
crates/pram-machine/src/instr.rs:
crates/pram-machine/src/machine.rs:
crates/pram-machine/src/memory.rs:
crates/pram-machine/src/program.rs:
crates/pram-machine/src/programs.rs:
crates/pram-machine/src/types.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
