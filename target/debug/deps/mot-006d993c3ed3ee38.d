/root/repo/target/debug/deps/mot-006d993c3ed3ee38.d: crates/mot/src/lib.rs crates/mot/src/area.rs crates/mot/src/network.rs crates/mot/src/primitives.rs crates/mot/src/topology.rs

/root/repo/target/debug/deps/libmot-006d993c3ed3ee38.rlib: crates/mot/src/lib.rs crates/mot/src/area.rs crates/mot/src/network.rs crates/mot/src/primitives.rs crates/mot/src/topology.rs

/root/repo/target/debug/deps/libmot-006d993c3ed3ee38.rmeta: crates/mot/src/lib.rs crates/mot/src/area.rs crates/mot/src/network.rs crates/mot/src/primitives.rs crates/mot/src/topology.rs

crates/mot/src/lib.rs:
crates/mot/src/area.rs:
crates/mot/src/network.rs:
crates/mot/src/primitives.rs:
crates/mot/src/topology.rs:
