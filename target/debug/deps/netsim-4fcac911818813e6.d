/root/repo/target/debug/deps/netsim-4fcac911818813e6.d: crates/netsim/src/lib.rs

/root/repo/target/debug/deps/netsim-4fcac911818813e6: crates/netsim/src/lib.rs

crates/netsim/src/lib.rs:
