/root/repo/target/debug/deps/workloads-f83468a8283bb089.d: crates/workloads/src/lib.rs

/root/repo/target/debug/deps/libworkloads-f83468a8283bb089.rlib: crates/workloads/src/lib.rs

/root/repo/target/debug/deps/libworkloads-f83468a8283bb089.rmeta: crates/workloads/src/lib.rs

crates/workloads/src/lib.rs:
