/root/repo/target/debug/deps/galois_ops-5ede73d1c5e0f2b2.d: crates/bench/benches/galois_ops.rs

/root/repo/target/debug/deps/galois_ops-5ede73d1c5e0f2b2: crates/bench/benches/galois_ops.rs

crates/bench/benches/galois_ops.rs:
