/root/repo/target/debug/deps/scheme_conformance-c2554f373e66e145.d: tests/scheme_conformance.rs

/root/repo/target/debug/deps/scheme_conformance-c2554f373e66e145: tests/scheme_conformance.rs

tests/scheme_conformance.rs:
