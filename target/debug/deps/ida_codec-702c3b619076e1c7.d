/root/repo/target/debug/deps/ida_codec-702c3b619076e1c7.d: crates/bench/benches/ida_codec.rs Cargo.toml

/root/repo/target/debug/deps/libida_codec-702c3b619076e1c7.rmeta: crates/bench/benches/ida_codec.rs Cargo.toml

crates/bench/benches/ida_codec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
