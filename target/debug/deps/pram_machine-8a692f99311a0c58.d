/root/repo/target/debug/deps/pram_machine-8a692f99311a0c58.d: crates/pram-machine/src/lib.rs crates/pram-machine/src/instr.rs crates/pram-machine/src/machine.rs crates/pram-machine/src/memory.rs crates/pram-machine/src/program.rs crates/pram-machine/src/programs.rs crates/pram-machine/src/types.rs

/root/repo/target/debug/deps/pram_machine-8a692f99311a0c58: crates/pram-machine/src/lib.rs crates/pram-machine/src/instr.rs crates/pram-machine/src/machine.rs crates/pram-machine/src/memory.rs crates/pram-machine/src/program.rs crates/pram-machine/src/programs.rs crates/pram-machine/src/types.rs

crates/pram-machine/src/lib.rs:
crates/pram-machine/src/instr.rs:
crates/pram-machine/src/machine.rs:
crates/pram-machine/src/memory.rs:
crates/pram-machine/src/program.rs:
crates/pram-machine/src/programs.rs:
crates/pram-machine/src/types.rs:
