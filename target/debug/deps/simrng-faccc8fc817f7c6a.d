/root/repo/target/debug/deps/simrng-faccc8fc817f7c6a.d: crates/simrng/src/lib.rs crates/simrng/src/splitmix.rs crates/simrng/src/xoshiro.rs

/root/repo/target/debug/deps/libsimrng-faccc8fc817f7c6a.rlib: crates/simrng/src/lib.rs crates/simrng/src/splitmix.rs crates/simrng/src/xoshiro.rs

/root/repo/target/debug/deps/libsimrng-faccc8fc817f7c6a.rmeta: crates/simrng/src/lib.rs crates/simrng/src/splitmix.rs crates/simrng/src/xoshiro.rs

crates/simrng/src/lib.rs:
crates/simrng/src/splitmix.rs:
crates/simrng/src/xoshiro.rs:
