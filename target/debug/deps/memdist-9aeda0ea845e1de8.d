/root/repo/target/debug/deps/memdist-9aeda0ea845e1de8.d: crates/memdist/src/lib.rs crates/memdist/src/cluster.rs crates/memdist/src/expansion.rs crates/memdist/src/map.rs crates/memdist/src/store.rs

/root/repo/target/debug/deps/libmemdist-9aeda0ea845e1de8.rlib: crates/memdist/src/lib.rs crates/memdist/src/cluster.rs crates/memdist/src/expansion.rs crates/memdist/src/map.rs crates/memdist/src/store.rs

/root/repo/target/debug/deps/libmemdist-9aeda0ea845e1de8.rmeta: crates/memdist/src/lib.rs crates/memdist/src/cluster.rs crates/memdist/src/expansion.rs crates/memdist/src/map.rs crates/memdist/src/store.rs

crates/memdist/src/lib.rs:
crates/memdist/src/cluster.rs:
crates/memdist/src/expansion.rs:
crates/memdist/src/map.rs:
crates/memdist/src/store.rs:
