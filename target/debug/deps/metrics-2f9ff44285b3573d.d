/root/repo/target/debug/deps/metrics-2f9ff44285b3573d.d: crates/metrics/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmetrics-2f9ff44285b3573d.rmeta: crates/metrics/src/lib.rs Cargo.toml

crates/metrics/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
