/root/repo/target/debug/deps/galois_ops-6c90bc609bc0ae03.d: crates/bench/benches/galois_ops.rs Cargo.toml

/root/repo/target/debug/deps/libgalois_ops-6c90bc609bc0ae03.rmeta: crates/bench/benches/galois_ops.rs Cargo.toml

crates/bench/benches/galois_ops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
