/root/repo/target/debug/deps/simrng-54cdefbe52953204.d: crates/simrng/src/lib.rs crates/simrng/src/splitmix.rs crates/simrng/src/xoshiro.rs Cargo.toml

/root/repo/target/debug/deps/libsimrng-54cdefbe52953204.rmeta: crates/simrng/src/lib.rs crates/simrng/src/splitmix.rs crates/simrng/src/xoshiro.rs Cargo.toml

crates/simrng/src/lib.rs:
crates/simrng/src/splitmix.rs:
crates/simrng/src/xoshiro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
