/root/repo/target/debug/deps/ida-564571b217278efb.d: crates/ida/src/lib.rs crates/ida/src/codec.rs crates/ida/src/store.rs

/root/repo/target/debug/deps/ida-564571b217278efb: crates/ida/src/lib.rs crates/ida/src/codec.rs crates/ida/src/store.rs

crates/ida/src/lib.rs:
crates/ida/src/codec.rs:
crates/ida/src/store.rs:
