/root/repo/target/debug/deps/experiments_smoke-b92eb27ada75240e.d: tests/experiments_smoke.rs

/root/repo/target/debug/deps/experiments_smoke-b92eb27ada75240e: tests/experiments_smoke.rs

tests/experiments_smoke.rs:
