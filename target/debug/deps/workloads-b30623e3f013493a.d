/root/repo/target/debug/deps/workloads-b30623e3f013493a.d: crates/workloads/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libworkloads-b30623e3f013493a.rmeta: crates/workloads/src/lib.rs Cargo.toml

crates/workloads/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
