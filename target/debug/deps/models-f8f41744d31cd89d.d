/root/repo/target/debug/deps/models-f8f41744d31cd89d.d: crates/models/src/lib.rs crates/models/src/params.rs

/root/repo/target/debug/deps/libmodels-f8f41744d31cd89d.rlib: crates/models/src/lib.rs crates/models/src/params.rs

/root/repo/target/debug/deps/libmodels-f8f41744d31cd89d.rmeta: crates/models/src/lib.rs crates/models/src/params.rs

crates/models/src/lib.rs:
crates/models/src/params.rs:
