/root/repo/target/debug/deps/mot_routing-3a4545b9eb58e4d7.d: crates/bench/benches/mot_routing.rs Cargo.toml

/root/repo/target/debug/deps/libmot_routing-3a4545b9eb58e4d7.rmeta: crates/bench/benches/mot_routing.rs Cargo.toml

crates/bench/benches/mot_routing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
