/root/repo/target/debug/deps/models-dd4770a68089fb9e.d: crates/models/src/lib.rs crates/models/src/params.rs Cargo.toml

/root/repo/target/debug/deps/libmodels-dd4770a68089fb9e.rmeta: crates/models/src/lib.rs crates/models/src/params.rs Cargo.toml

crates/models/src/lib.rs:
crates/models/src/params.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
