/root/repo/target/debug/deps/workloads-ca1c08667a26def2.d: crates/workloads/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libworkloads-ca1c08667a26def2.rmeta: crates/workloads/src/lib.rs Cargo.toml

crates/workloads/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
