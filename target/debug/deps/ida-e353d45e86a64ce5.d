/root/repo/target/debug/deps/ida-e353d45e86a64ce5.d: crates/ida/src/lib.rs crates/ida/src/codec.rs crates/ida/src/store.rs

/root/repo/target/debug/deps/libida-e353d45e86a64ce5.rlib: crates/ida/src/lib.rs crates/ida/src/codec.rs crates/ida/src/store.rs

/root/repo/target/debug/deps/libida-e353d45e86a64ce5.rmeta: crates/ida/src/lib.rs crates/ida/src/codec.rs crates/ida/src/store.rs

crates/ida/src/lib.rs:
crates/ida/src/codec.rs:
crates/ida/src/store.rs:
