/root/repo/target/debug/deps/experiments_smoke-1629fed531787276.d: tests/experiments_smoke.rs Cargo.toml

/root/repo/target/debug/deps/libexperiments_smoke-1629fed531787276.rmeta: tests/experiments_smoke.rs Cargo.toml

tests/experiments_smoke.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
