/root/repo/target/debug/deps/mot-4b468492757cdb40.d: crates/mot/src/lib.rs crates/mot/src/area.rs crates/mot/src/network.rs crates/mot/src/primitives.rs crates/mot/src/topology.rs

/root/repo/target/debug/deps/mot-4b468492757cdb40: crates/mot/src/lib.rs crates/mot/src/area.rs crates/mot/src/network.rs crates/mot/src/primitives.rs crates/mot/src/topology.rs

crates/mot/src/lib.rs:
crates/mot/src/area.rs:
crates/mot/src/network.rs:
crates/mot/src/primitives.rs:
crates/mot/src/topology.rs:
