/root/repo/target/debug/deps/memdist_ops-7f306ac3fc23fa90.d: crates/bench/benches/memdist_ops.rs Cargo.toml

/root/repo/target/debug/deps/libmemdist_ops-7f306ac3fc23fa90.rmeta: crates/bench/benches/memdist_ops.rs Cargo.toml

crates/bench/benches/memdist_ops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
