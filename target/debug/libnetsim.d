/root/repo/target/debug/libnetsim.rlib: /root/repo/crates/netsim/src/lib.rs
