//! End-to-end faithfulness: every classic P-RAM program must produce the
//! ideal machine's results when its shared memory is simulated by each of
//! the paper's schemes and baselines.
//!
//! This is the reproduction's strongest correctness statement: the schemes
//! are not request-level mocks — the whole instruction-level machine runs
//! on top of them.

use pramsim::core::{Hp2dmotLeaves, HpDmmpc, IdaShared, Lpp2dmot, UwMpc};
use pramsim::machine::{programs, IdealMemory, Mode, Pram, SharedMemory, Word, WritePolicy};

/// Run `prog` on a fresh memory of type built by `make`, with `init`
/// setting up inputs; return the first `outputs` cells.
fn run_on<M: SharedMemory + ?Sized>(
    mem: &mut M,
    prog: &pramsim::machine::Program,
    n: usize,
    mode: Mode,
    init: &[(usize, Word)],
    outputs: std::ops::Range<usize>,
) -> Vec<Word> {
    for &(a, v) in init {
        mem.poke(a, v);
    }
    Pram::new(n, mode).run(prog, mem).expect("program must run clean");
    outputs.map(|a| mem.peek(a)).collect()
}

/// All schemes under test, boxed behind the trait.
fn all_schemes(n: usize, m: usize) -> Vec<(&'static str, Box<dyn SharedMemory>)> {
    vec![
        ("HpDmmpc", Box::new(HpDmmpc::for_pram(n, m))),
        ("UwMpc", Box::new(UwMpc::for_pram(n, m))),
        ("Hp2dmotLeaves", Box::new(Hp2dmotLeaves::for_pram(n, m))),
        ("Lpp2dmot", Box::new(Lpp2dmot::for_pram(n, m))),
        ("IdaShared", Box::new(IdaShared::for_pram(n, m))),
    ]
}

fn check_program(
    name: &str,
    prog: pramsim::machine::Program,
    n: usize,
    m: usize,
    mode: Mode,
    init: Vec<(usize, Word)>,
    outputs: std::ops::Range<usize>,
) {
    let mut ideal = IdealMemory::new(m);
    let expect = run_on(&mut ideal, &prog, n, mode, &init, outputs.clone());
    for (scheme_name, mut mem) in all_schemes(n, m) {
        let got = run_on(mem.as_mut(), &prog, n, mode, &init, outputs.clone());
        assert_eq!(got, expect, "{name} differs on {scheme_name}");
    }
}

#[test]
fn parallel_sum_everywhere() {
    let n = 8;
    let m = programs::parallel_sum_layout(n);
    let init: Vec<(usize, Word)> = (0..n).map(|i| (i, (3 * i + 2) as Word)).collect();
    check_program("parallel_sum", programs::parallel_sum(n), n, m, Mode::Erew, init, 0..1);
}

#[test]
fn prefix_sum_everywhere() {
    let n = 8;
    let m = programs::prefix_sum_layout(n);
    let init: Vec<(usize, Word)> = (0..n).map(|i| (i, (i * i) as Word)).collect();
    check_program("prefix_sum", programs::prefix_sum(n), n, m, Mode::Erew, init, 0..n);
}

#[test]
fn broadcast_erew_everywhere() {
    let n = 8;
    let m = programs::broadcast_erew_layout(n);
    check_program(
        "broadcast_erew",
        programs::broadcast_erew(n),
        n,
        m,
        Mode::Erew,
        vec![(0, 777)],
        0..n,
    );
}

#[test]
fn broadcast_crew_everywhere() {
    let n = 8;
    check_program("broadcast_crew", programs::broadcast_crew(), n, n, Mode::Crew, vec![(0, 55)], 0..n);
}

#[test]
fn max_crcw_everywhere() {
    let n = 8;
    let m = programs::max_crcw_layout(n);
    let init: Vec<(usize, Word)> =
        (0..n).map(|i| (i, [3, 1, 4, 1, 5, 9, 2, 6][i])).collect();
    check_program(
        "max_crcw",
        programs::max_crcw(n),
        n,
        m,
        Mode::Crcw(WritePolicy::Max),
        init,
        n..n + 1,
    );
}

#[test]
fn list_ranking_everywhere() {
    let n = 8;
    let m = programs::list_ranking_layout(n);
    // Chain 7 -> 6 -> ... -> 0 (terminal).
    let mut init: Vec<(usize, Word)> = Vec::new();
    for i in 0..n {
        init.push((i, if i == 0 { 0 } else { (i - 1) as Word }));
        init.push((n + i, if i == 0 { 0 } else { 1 }));
    }
    check_program("list_ranking", programs::list_ranking(n), n, m, Mode::Crew, init, n..2 * n);
}

#[test]
fn matvec_everywhere() {
    let (rows, cols) = (4, 4);
    let n = rows * cols;
    let m = programs::matvec_layout(rows, cols);
    let mut init: Vec<(usize, Word)> = Vec::new();
    for i in 0..rows {
        for j in 0..cols {
            init.push((i * cols + j, (i as Word) - (j as Word)));
        }
    }
    for j in 0..cols {
        init.push((rows * cols + j, j as Word + 1));
    }
    let y_base = 2 * rows * cols + cols;
    check_program(
        "matvec",
        programs::matvec(rows, cols),
        n,
        m,
        Mode::Crew,
        init,
        y_base..y_base + rows,
    );
}

#[test]
fn odd_even_sort_everywhere() {
    let n = 8;
    let m = programs::odd_even_sort_layout(n);
    let init: Vec<(usize, Word)> =
        (0..n).map(|i| (i, [9, 2, 7, 2, 5, 0, 8, 1][i])).collect();
    check_program(
        "odd_even_sort",
        programs::odd_even_sort(n),
        n,
        m,
        Mode::Erew,
        init,
        0..n,
    );
}

#[test]
fn erew_violations_rejected_on_schemes_too() {
    // The conflict semantics live in the machine, not the backend: a CREW
    // program under EREW mode must fail identically on a scheme.
    let n = 4;
    let mut mem = HpDmmpc::for_pram(n, n);
    let err = Pram::new(n, Mode::Erew).run(&programs::broadcast_crew(), &mut mem);
    assert!(err.is_err());
}
