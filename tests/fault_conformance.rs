//! Fault conformance matrix: what each scheme's redundancy guarantees
//! under static module faults, asserted cell by cell.
//!
//! The guarantees (also tabulated in README.md):
//!
//! * **majority schemes** (`uw-mpc`, `hp-dmmpc`, the 2DMOT pair): a cell
//!   with fewer than `⌈r/2⌉ = c` faulty copies always reads back
//!   correctly — the quorum protocol completes on the survivors;
//! * **ida**: a cell whose block lost at most `d − quorum` shares always
//!   reads back correctly — dispersal decodes from the survivors;
//! * **hashed**: any positive fault fraction loses cells — there is no
//!   second copy.
//!
//! Plus the determinism property the whole experiment layer rests on: a
//! `(scheme, workload seed, fault plan)` triple reproduces byte-identical
//! `totals()` and `FaultReport`s.

use pramsim::core::{Scheme, SchemeKind};
use pramsim::faults::{FaultPlan, FaultyBuilder, FaultyScheme, Placement};
use pramsim::machine::SharedMemory;
use pramsim::simrng::{rng_from_seed, Rng};

const SEED: u64 = 0xFA01;

fn build(kind: SchemeKind, n: usize, m: usize, plan: FaultPlan) -> FaultyScheme {
    FaultyBuilder::new(n, m)
        .kind(kind)
        .seed(SEED)
        .plan(plan)
        .build()
        .unwrap_or_else(|e| panic!("{kind} must build: {e}"))
}

/// Write every cell through the faulty machine, then read every cell back,
/// in `n`-request waves.
fn write_read_all(s: &mut FaultyScheme, n: usize, m: usize) {
    for base in (0..m).step_by(n) {
        let writes: Vec<(usize, i64)> = (base..(base + n).min(m))
            .map(|a| (a, (a * 131 + 7) as i64))
            .collect();
        s.access(&[], &writes);
    }
    for base in (0..m).step_by(n) {
        let reads: Vec<usize> = (base..(base + n).min(m)).collect();
        let res = s.access(&reads, &[]);
        for (i, &a) in reads.iter().enumerate() {
            if s.is_recoverable(a) {
                // The per-cell guarantee under test: recoverable cells
                // (faulty copies below the scheme's margin) read correctly.
                assert_eq!(
                    res.read_values[i],
                    (a * 131 + 7) as i64,
                    "{}: recoverable cell {a} ({} faulty copies) must survive",
                    Scheme::name(s),
                    s.faulty_copies(a)
                );
            }
        }
    }
}

#[test]
fn majority_schemes_survive_below_half_faulty_copies() {
    for kind in [SchemeKind::UwMpc, SchemeKind::HpDmmpc] {
        for f in [1.0 / 64.0, 1.0 / 16.0, 1.0 / 8.0, 1.0 / 4.0] {
            let (n, m) = (16, 256);
            let mut s = build(kind, n, m, FaultPlan::modules(f).with_seed(SEED));
            let r = s.redundancy() as usize;
            let c = r.div_ceil(2); // ⌈r/2⌉ — the majority margin
                                   // Sanity: "recoverable" is exactly "faulty copies < ⌈r/2⌉" or
                                   // better (the implementation recovers even beyond the
                                   // guaranteed margin when writes and reads share survivors, but
                                   // it must never claim less than the guarantee).
            for cell in 0..m {
                if (s.faulty_copies(cell) as usize) < c {
                    assert!(
                        s.is_recoverable(cell),
                        "{kind}: cell {cell} with < c faulty copies must be recoverable"
                    );
                }
            }
            write_read_all(&mut s, n, m);
            let rep = s.report();
            assert_eq!(
                rep.stale_reads, 0,
                "{kind} at f={f}: static faults never go stale"
            );
            assert_eq!(
                rep.reads,
                rep.correct_reads + rep.lost_reads,
                "{kind} at f={f}"
            );
        }
    }
}

#[test]
fn two_dmot_schemes_survive_module_faults_too() {
    for kind in [SchemeKind::Hp2dmotLeaves, SchemeKind::Lpp2dmot] {
        let (n, m) = (8, 64);
        let mut s = build(kind, n, m, FaultPlan::modules(1.0 / 8.0).with_seed(SEED));
        write_read_all(&mut s, n, m);
        let rep = s.report();
        assert_eq!(rep.reads, rep.correct_reads + rep.lost_reads, "{kind}");
    }
}

#[test]
fn ida_survives_up_to_share_margin() {
    let (n, m) = (64, 256);
    for f in [1.0 / 64.0, 1.0 / 16.0, 1.0 / 8.0, 1.0 / 4.0] {
        let mut s = build(SchemeKind::Ida, n, m, FaultPlan::modules(f).with_seed(SEED));
        // is_recoverable is exactly "lost shares ≤ d − quorum" (computed
        // from the store's own geometry at build time); write_read_all
        // asserts every such cell reads correctly.
        write_read_all(&mut s, n, m);
        let rep = s.report();
        assert_eq!(rep.stale_reads, 0, "IDA at f={f}");
        assert_eq!(
            rep.reads,
            rep.correct_reads + rep.lost_reads,
            "IDA at f={f}"
        );
    }
}

#[test]
fn hashed_loses_cells_at_any_positive_fraction() {
    let (n, m) = (16, 1024);
    for f in [1.0 / 64.0, 1.0 / 16.0, 1.0 / 4.0] {
        let mut s = build(
            SchemeKind::Hashed,
            n,
            m,
            FaultPlan::modules(f).with_seed(SEED),
        );
        assert!(
            s.lost_cells() >= 1,
            "hashed at f={f}: a single copy means any dead module loses data"
        );
        write_read_all(&mut s, n, m);
        let rep = s.report();
        assert!(rep.lost_reads >= 1, "the audit sweep must observe the loss");
        assert_eq!(rep.recovered_majority + rep.recovered_ida, 0);
    }
    // f = 0 control: nothing lost.
    let s = build(SchemeKind::Hashed, n, m, FaultPlan::none());
    assert_eq!(s.lost_cells(), 0);
}

#[test]
fn adversarial_placement_is_strictly_worse_for_the_hot_cell() {
    let hot = 17;
    let f = 2.0 / 64.0; // a couple of modules
    let plan = FaultPlan::modules(f).with_seed(SEED).with_hot_cell(hot);
    let adv = build(
        SchemeKind::Hashed,
        16,
        1024,
        plan.with_placement(Placement::Adversarial),
    );
    assert!(
        !adv.is_recoverable(hot),
        "the adversary kills the hot cell's module first"
    );
}

/// Satellite: two runs of the same scheme, workload, and seed — including
/// a fault plan — produce byte-identical `totals()` and `FaultReport`s.
#[test]
fn determinism_under_faults_across_the_zoo() {
    for kind in SchemeKind::ALL {
        let (n, m) = match kind {
            SchemeKind::Hp2dmotLeaves | SchemeKind::Lpp2dmot => (8, 64),
            _ => (16, 256),
        };
        let plan = FaultPlan::modules(1.0 / 16.0)
            .with_message_drop(0.15)
            .with_seed(SEED);
        let run = || {
            let mut s = build(kind, n, m, plan);
            let mut rng = rng_from_seed(SEED ^ 0xD5);
            for step in 0..10 {
                let k = 1 + rng.index(n.min(m));
                let addrs = rng.sample_distinct(m as u64, k);
                let split = rng.index(k + 1);
                let reads: Vec<usize> = addrs[..split].iter().map(|&a| a as usize).collect();
                let writes: Vec<(usize, i64)> = addrs[split..]
                    .iter()
                    .map(|&a| (a as usize, (step * 977 + a) as i64))
                    .collect();
                s.access(&reads, &writes);
            }
            (s.totals(), s.report())
        };
        let (totals_a, report_a) = run();
        let (totals_b, report_b) = run();
        assert_eq!(totals_a, totals_b, "{kind}: totals must be byte-identical");
        assert_eq!(
            report_a, report_b,
            "{kind}: FaultReport must be byte-identical"
        );
    }
}
