//! Golden determinism snapshots: the step engine's observable behavior,
//! pinned byte-for-byte.
//!
//! Each scheme in the zoo runs a fixed seeded workload and the snapshot
//! string captures everything the engine reports — accumulated
//! `StepReport` totals, the final step's full report (including
//! `ProtocolStats`), and an FNV-1a hash over every value read back — so
//! any engine rewrite is verified *behavior-identical*, not merely
//! "still passes the property suite". The fault-injection snapshots pin
//! the whole `FaultReport` JSON line the same way.
//!
//! The constants below were captured from the pre-refactor engine (the
//! per-phase-allocating data plane) and must never change across a
//! performance refactor. To regenerate after an *intentional* behavior
//! change: `GOLDEN=print cargo test --test golden_snapshots -- --nocapture`
//! and paste the printed block.

use pramsim::core::{SchemeKind, SimBuilder};
use pramsim::faults::{FaultPlan, FaultyBuilder};
use pramsim::machine::SharedMemory;
use pramsim::simrng::rng_from_seed;

const GOLDEN_SEED: u64 = 0xC0FFEE;
const STEPS: usize = 12;

/// The routed 2DMOT schemes simulate every packet, so they run on a
/// smaller instance (same policy as the property suite and E14).
fn size_for(kind: SchemeKind) -> (usize, usize) {
    match kind {
        SchemeKind::Hp2dmotLeaves | SchemeKind::Lpp2dmot => (8, 64),
        _ => (16, 256),
    }
}

// The hasher is the workspace-wide one (also behind cr-serve's session
// trace hashes), so the golden recipe and the service artifact cannot
// silently drift apart.
use pramsim::simrng::{fnv1a, FNV_OFFSET};

/// Drive `mem` through the fixed golden workload; returns the read hash.
fn drive(mem: &mut dyn SharedMemory, n: usize, m: usize) -> u64 {
    let mut rng = rng_from_seed(GOLDEN_SEED ^ 0x9E37);
    let mut hash = FNV_OFFSET;
    for _ in 0..STEPS {
        let p = workloads::uniform(n, m, 0.3, &mut rng);
        let res = mem.access(&p.reads, &p.writes);
        for &v in &res.read_values {
            fnv1a(&mut hash, v as u64);
        }
        fnv1a(&mut hash, res.cost.phases);
        fnv1a(&mut hash, res.cost.cycles);
        fnv1a(&mut hash, res.cost.messages);
    }
    hash
}

/// One scheme's snapshot line: totals + final step + read hash.
fn snapshot(kind: SchemeKind) -> String {
    let (n, m) = size_for(kind);
    let mut s = SimBuilder::new(n, m)
        .kind(kind)
        .seed(GOLDEN_SEED)
        .build()
        .expect("golden regimes are feasible");
    let hash = drive(s.as_mut(), n, m);
    let (tot, steps) = s.totals();
    format!(
        "{kind} n={n} m={m} steps={steps} req={} phases={} cycles={} \
         messages={} readhash={hash:016x} last={:?}",
        tot.requests,
        tot.phases,
        tot.cycles,
        tot.messages,
        s.last_step()
    )
}

/// One faulty scheme's snapshot: the full `FaultReport` JSON plus the
/// read hash (the JSON is what PR 2 promised stays byte-identical).
fn fault_snapshot(kind: SchemeKind) -> String {
    let (n, m) = size_for(kind);
    let plan = FaultPlan::modules(0.125)
        .with_message_drop(0.05)
        .with_link_fraction(0.02)
        .with_seed(GOLDEN_SEED);
    let mut s = FaultyBuilder::new(n, m)
        .kind(kind)
        .seed(GOLDEN_SEED)
        .plan(plan)
        .build()
        .expect("golden fault regimes are feasible");
    let hash = drive(&mut s, n, m);
    format!(
        "readhash={hash:016x} {}",
        s.report().to_json(kind.name(), 0.125)
    )
}

const GOLDEN: [(&str, SchemeKind); 6] = [
    ("uw-mpc", SchemeKind::UwMpc),
    ("hp-dmmpc", SchemeKind::HpDmmpc),
    ("hp-2dmot", SchemeKind::Hp2dmotLeaves),
    ("lpp-2dmot", SchemeKind::Lpp2dmot),
    ("hashed", SchemeKind::Hashed),
    ("ida", SchemeKind::Ida),
];

/// Pre-refactor engine snapshots (see module docs). Index-aligned with
/// [`GOLDEN`].
const EXPECTED: [&str; 6] = [
    "uw-mpc n=16 m=256 steps=12 req=192 phases=141 cycles=93 messages=2366 readhash=9b14dab2fb18c607 last=StepReport { requests: 16, phases: 13, cycles: 9, messages: 212, protocol: ProtocolStats { stage1_phases: 9, stage2_phases: 0, cycles: 9, messages: 212, stage1_cycles: 9, stage1_messages: 212, stage1_leftover: 0, killed_attempts: 35, dead_attempts: 0, failed_requests: 0, copies_accessed: 71 } }",
    "hp-dmmpc n=16 m=256 steps=12 req=192 phases=228 cycles=180 messages=5760 readhash=d015f0f425074b0d last=StepReport { requests: 16, phases: 19, cycles: 15, messages: 480, protocol: ProtocolStats { stage1_phases: 15, stage2_phases: 0, cycles: 15, messages: 480, stage1_cycles: 15, stage1_messages: 480, stage1_leftover: 0, killed_attempts: 4, dead_attempts: 0, failed_requests: 0, copies_accessed: 236 } }",
    "hp-2dmot n=8 m=64 steps=12 req=96 phases=132 cycles=3744 messages=51840 readhash=85b4345357f65494 last=StepReport { requests: 8, phases: 11, cycles: 312, messages: 4320, protocol: ProtocolStats { stage1_phases: 8, stage2_phases: 0, cycles: 312, messages: 4320, stage1_cycles: 312, stage1_messages: 4320, stage1_leftover: 0, killed_attempts: 0, dead_attempts: 0, failed_requests: 0, copies_accessed: 120 } }",
    "lpp-2dmot n=8 m=64 steps=12 req=96 phases=88 cycles=733 messages=3357 readhash=6aa0965245889b5c last=StepReport { requests: 8, phases: 8, cycles: 70, messages: 294, protocol: ProtocolStats { stage1_phases: 5, stage2_phases: 0, cycles: 70, messages: 294, stage1_cycles: 70, stage1_messages: 294, stage1_leftover: 0, killed_attempts: 10, dead_attempts: 0, failed_requests: 0, copies_accessed: 22 } }",
    "hashed n=16 m=256 steps=12 req=192 phases=22 cycles=22 messages=384 readhash=3397fc7ed02e80cd last=StepReport { requests: 16, phases: 2, cycles: 2, messages: 32, protocol: ProtocolStats { stage1_phases: 0, stage2_phases: 0, cycles: 0, messages: 0, stage1_cycles: 0, stage1_messages: 0, stage1_leftover: 0, killed_attempts: 0, dead_attempts: 0, failed_requests: 0, copies_accessed: 0 } }",
    "ida n=16 m=256 steps=12 req=192 phases=67 cycles=67 messages=1260 readhash=37f1ad528bf902f1 last=StepReport { requests: 16, phases: 6, cycles: 6, messages: 105, protocol: ProtocolStats { stage1_phases: 0, stage2_phases: 0, cycles: 0, messages: 0, stage1_cycles: 0, stage1_messages: 0, stage1_leftover: 0, killed_attempts: 0, dead_attempts: 0, failed_requests: 0, copies_accessed: 0 } }",
];

const EXPECTED_FAULTY: [(&str, &str); 3] = [
    (
        "hp-dmmpc",
        r#"readhash=d1d689571dc28950 {"experiment":"E14","scheme":"hp-dmmpc","f":0.125000,"dead_modules":8,"dead_processors":0,"dead_links":0,"lost_cells":0,"steps":12,"reads":132,"writes":60,"correct_reads":132,"stale_reads":0,"lost_reads":0,"unserved_reads":0,"lost_writes":0,"recovered_majority":126,"recovered_ida":0,"unserved_requests":0,"dead_attempts":385,"dropped_messages":114,"faulty_phases":228,"baseline_phases":228,"read_survival":1.000000,"slowdown":1.0000}"#,
    ),
    (
        "hp-2dmot",
        r#"readhash=fa9b8b084be89dd4 {"experiment":"E14","scheme":"hp-2dmot","f":0.125000,"dead_modules":8,"dead_processors":0,"dead_links":646,"lost_cells":0,"steps":12,"reads":72,"writes":24,"correct_reads":72,"stale_reads":0,"lost_reads":0,"unserved_reads":0,"lost_writes":0,"recovered_majority":68,"recovered_ida":0,"unserved_requests":0,"dead_attempts":162,"dropped_messages":26,"faulty_phases":3036,"baseline_phases":132,"read_survival":1.000000,"slowdown":23.0000}"#,
    ),
    (
        "ida",
        r#"readhash=76a3be6100e80e91 {"experiment":"E14","scheme":"ida","f":0.125000,"dead_modules":3,"dead_processors":0,"dead_links":0,"lost_cells":0,"steps":12,"reads":132,"writes":60,"correct_reads":132,"stale_reads":0,"lost_reads":0,"unserved_reads":0,"lost_writes":0,"recovered_majority":0,"recovered_ida":98,"unserved_requests":0,"dead_attempts":0,"dropped_messages":0,"faulty_phases":68,"baseline_phases":67,"read_survival":1.000000,"slowdown":1.0149}"#,
    ),
];

#[test]
fn golden_scheme_snapshots() {
    let printing = std::env::var("GOLDEN").is_ok_and(|v| v == "print");
    for ((name, kind), expected) in GOLDEN.iter().zip(EXPECTED) {
        let got = snapshot(*kind);
        if printing {
            println!("    \"{got}\",");
        } else {
            assert_eq!(got, expected, "{name} snapshot drifted");
        }
    }
    assert!(
        !printing,
        "GOLDEN=print captures snapshots; unset it to assert"
    );
}

#[test]
fn golden_fault_snapshots() {
    let printing = std::env::var("GOLDEN").is_ok_and(|v| v == "print");
    for (name, expected) in EXPECTED_FAULTY {
        let kind: SchemeKind = name.parse().expect("golden kinds parse");
        let got = fault_snapshot(kind);
        if printing {
            println!("    (\"{name}\", \"{got}\"),");
        } else {
            assert_eq!(got, expected, "{name} fault snapshot drifted");
        }
    }
    assert!(
        !printing,
        "GOLDEN=print captures snapshots; unset it to assert"
    );
}

/// Service-level goldens: shard session trace hashes (the Wei et
/// al.-style verifiable artifact `cr-serve` exposes), pinned across the
/// IDA/hashed data-plane flattening. Captured from the pre-rewrite
/// engine: a drifting hash here means a served session observed
/// different read values or step costs than before the rewrite.
const EXPECTED_TRACES: [(SchemeKind, &str); 3] = [
    (SchemeKind::Ida, "21e7db2ca3247d11"),
    (SchemeKind::HpDmmpc, "a1278dc2e6a6acf1"),
    (SchemeKind::Hashed, "7517e0fc1da75b89"),
];

#[test]
fn golden_session_trace_hashes() {
    use pramsim::serve::{Service, ServiceConfig, SessionSpec, WorkloadSpec};
    let svc = Service::start(ServiceConfig::with_shards(2)).expect("spawn shard workers");
    let h = svc.handle();
    for (kind, expected) in EXPECTED_TRACES {
        let open = h
            .open(SessionSpec::new(16, 256, kind).seed(GOLDEN_SEED))
            .expect("golden session opens");
        h.step(open.sid, WorkloadSpec::Uniform, 12)
            .expect("golden session steps");
        let t = h.close(open.sid).expect("golden session closes");
        assert_eq!(t.steps, 12);
        assert_eq!(
            format!("{:016x}", t.trace),
            expected,
            "{kind} session trace drifted"
        );
    }
    svc.shutdown();
}

/// The snapshot harness itself must be deterministic: two fresh drives
/// of the same scheme produce the same snapshot string.
#[test]
fn snapshots_are_reproducible() {
    assert_eq!(snapshot(SchemeKind::HpDmmpc), snapshot(SchemeKind::HpDmmpc));
    assert_eq!(
        fault_snapshot(SchemeKind::HpDmmpc),
        fault_snapshot(SchemeKind::HpDmmpc)
    );
}
