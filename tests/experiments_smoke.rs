//! Smoke tests: the experiment harness must run and report the expected
//! qualitative outcomes (the "shape" claims of DESIGN.md §4).
//!
//! The heavyweight scaling experiments (E4/E5) are exercised at full size
//! only by the `repro` binary; here we assert the cheap ones end-to-end.

use pram_bench::RunCtx;
use pramsim::core::SchemeKind;

#[test]
fn e1_models_table_lists_all_five() {
    let out = pram_bench::model_zoo::run(&RunCtx::seeded(1));
    for name in ["P-RAM", "MPC", "BDN", "DMMPC", "DMBDN"] {
        assert!(out.contains(name), "missing {name} in:\n{out}");
    }
    assert!(!out.contains("false\n") || out.contains("true"));
}

#[test]
fn e3_lower_bound_shows_granularity_cliff() {
    let out = pram_bench::lowerbound::run(&RunCtx::seeded(2));
    assert!(out.contains("Theorem 1"));
    // The r=1, M=64 row forces time 64; the fine-grain rows collapse.
    assert!(
        out.contains("64.0"),
        "coarse r=1 must force ~n time:\n{out}"
    );
}

#[test]
fn e6_crossbar_ratio_grows() {
    let out = pram_bench::crossbar::run(&RunCtx::seeded(3));
    assert!(out.contains("crossbar switches"));
}

#[test]
fn e7_area_reaches_optimality() {
    let out = pram_bench::area::run(&RunCtx::seeded(4));
    assert!(
        out.contains("true"),
        "some configuration must be area-optimal:\n{out}"
    );
    assert!(
        out.contains("false"),
        "some configuration must pay overhead:\n{out}"
    );
}

#[test]
fn e9_redundancy_hp_constant_uw_growing() {
    let out = pram_bench::redundancy::run(&RunCtx::seeded(5));
    // HP column is the Lemma-2 constant (15 for k=2, eps=0.5, b=4).
    assert!(out.contains("15"));
    // UW at n = 2^20 has grown past HP.
    assert!(
        out.contains("27"),
        "UW redundancy must reach 27 at 2^20:\n{out}"
    );
}

#[test]
fn e12_matvec_correct_at_all_sides() {
    let out = pram_bench::matvec::run(&RunCtx::seeded(6));
    assert!(
        !out.contains("false"),
        "native matvec must be correct:\n{out}"
    );
}

#[test]
fn e8_ida_blowup_constant() {
    let out = pram_bench::ida_exp::run(&RunCtx::seeded(7));
    assert!(
        out.matches("1.50").count() >= 4,
        "blowup must be 1.5 at every n:\n{out}"
    );
}

#[test]
fn e11_hashing_adversary_beats_average() {
    let out = pram_bench::hashing::run(&RunCtx::seeded(8));
    assert!(out.contains("adversarial"));
}

#[test]
fn e13_sweep_covers_requested_schemes() {
    // The full zoo...
    let out = pram_bench::sweep::run(&RunCtx::seeded(9));
    for kind in SchemeKind::ALL {
        assert!(out.contains(kind.name()), "sweep must cover {kind}:\n{out}");
    }
    // ...and the --scheme restriction honors the subset.
    let only = RunCtx::seeded(9).with_schemes(vec![SchemeKind::Hashed, SchemeKind::Ida]);
    let out = pram_bench::sweep::run(&only);
    assert!(out.contains("hashed") && out.contains("ida"));
    assert!(
        !out.contains("uw-mpc"),
        "unrequested schemes must not run:\n{out}"
    );
}

#[test]
fn programs_e2e_all_schemes_correct() {
    let ctx = RunCtx::seeded(10).with_schemes(vec![
        SchemeKind::HpDmmpc,
        SchemeKind::Hashed,
        SchemeKind::Ida,
    ]);
    let out = pram_bench::programs_e2e::run(&ctx);
    assert!(
        !out.contains("false"),
        "every scheme must match the ideal result:\n{out}"
    );
}

#[test]
fn e14_faults_emits_one_json_row_per_scheme_fraction_pair() {
    use pramsim::faults::Placement;
    // Two schemes to keep the smoke test fast; the conformance matrix
    // covers the zoo.
    let ctx = RunCtx::seeded(11).with_schemes(vec![SchemeKind::HpDmmpc, SchemeKind::Hashed]);
    let out = pram_bench::faults::run(&ctx);
    let rows = out
        .lines()
        .filter(|l| l.starts_with("{\"experiment\":\"E14\""))
        .count();
    assert_eq!(
        rows,
        2 * pram_bench::faults::FRACTIONS.len(),
        "one JSON row per (scheme, f) pair:\n{out}"
    );
    // The headline contrast is visible in one table: hashing loses cells,
    // the copy scheme does not.
    assert!(out.contains("hp-dmmpc"), "{out}");
    assert!(out.contains("hashed"), "{out}");

    // `repro --faults 0.1 --scheme hp-dmmpc` prints a full FaultReport.
    let pinned = RunCtx::seeded(11)
        .with_schemes(vec![SchemeKind::HpDmmpc])
        .with_faults(0.1, Placement::Random);
    let out = pram_bench::faults::run(&pinned);
    assert!(out.contains("FaultReport"), "{out}");
    assert_eq!(
        out.lines()
            .filter(|l| l.starts_with("{\"experiment\":\"E14\""))
            .count(),
        1
    );
}

#[test]
fn e15_throughput_emits_one_json_row_per_sweep_point() {
    // Quick mode, two schemes: one sweep point each.
    let ctx = RunCtx::seeded(12)
        .with_schemes(vec![SchemeKind::HpDmmpc, SchemeKind::Hashed])
        .with_quick(true);
    let rows = pram_bench::throughput::rows(&ctx);
    assert_eq!(rows.len(), 2, "quick mode keeps one n per scheme");
    for r in &rows {
        assert!(r.steps_per_sec > 0.0, "{r:?}");
        assert!(r.phases_per_step > 0.0, "{r:?}");
    }
    let out = pram_bench::throughput::render(&rows, &ctx);
    assert_eq!(
        out.lines()
            .filter(|l| l.starts_with("{\"experiment\":\"E15\""))
            .count(),
        2,
        "one JSON row per (scheme, n):\n{out}"
    );
    assert!(out.contains("hp-dmmpc") && out.contains("hashed"), "{out}");
}

#[test]
fn e15_threaded_sweep_reports_identical_deterministic_counters() {
    let base = RunCtx::seeded(13)
        .with_schemes(vec![SchemeKind::HpDmmpc, SchemeKind::Hashed])
        .with_quick(true);
    let serial = pram_bench::throughput::rows(&base);
    let threaded = pram_bench::throughput::rows(&base.clone().with_threads(4));
    assert_eq!(serial.len(), threaded.len());
    for (a, b) in serial.iter().zip(&threaded) {
        assert_eq!(a.scheme, b.scheme, "row order is deterministic");
        assert_eq!(a.n, b.n);
        assert_eq!(a.phases_per_step, b.phases_per_step);
        assert_eq!(a.cycles_per_step, b.cycles_per_step);
        assert_eq!(a.messages_per_step, b.messages_per_step);
    }
}

#[test]
fn e15_baseline_guard_passes_self_and_catches_regressions() {
    let ctx = RunCtx::seeded(14)
        .with_schemes(vec![SchemeKind::Hashed])
        .with_quick(true);
    let rows = pram_bench::throughput::rows(&ctx);
    // A run always passes against its own numbers.
    let baseline: String = rows.iter().map(|r| r.to_json() + "\n").collect();
    assert!(pram_bench::throughput::check_baseline(&rows, &baseline).is_ok());
    // A baseline 10x faster than reality trips the 3x guard.
    let inflated = baseline.replace(
        &format!("\"steps_per_sec\":{:.2}", rows[0].steps_per_sec),
        &format!("\"steps_per_sec\":{:.2}", rows[0].steps_per_sec * 10.0),
    );
    assert!(pram_bench::throughput::check_baseline(&rows, &inflated).is_err());
    // A baseline with no shared points is an error, not a silent pass.
    assert!(pram_bench::throughput::check_baseline(&rows, "").is_err());
    // Field extraction handles string and numeric fields.
    let line = &baseline.lines().next().unwrap();
    assert_eq!(
        pram_bench::throughput::json_field(line, "scheme"),
        Some("hashed")
    );
    assert_eq!(pram_bench::throughput::json_field(line, "n"), Some("64"));
}

#[test]
fn e16_serve_emits_one_json_row_per_grid_point_and_skips_routed_schemes() {
    // Quick mode, one flat scheme plus one routed scheme: the routed one
    // must be excluded (and named), the flat one measured.
    let ctx = RunCtx::seeded(15)
        .with_schemes(vec![SchemeKind::HpDmmpc, SchemeKind::Hp2dmotLeaves])
        .with_quick(true);
    let rows = pram_bench::serve::rows(&ctx);
    assert_eq!(rows.len(), 1, "quick grid is one point per flat scheme");
    let r = &rows[0];
    assert_eq!(r.scheme, "hp-dmmpc");
    assert_eq!(r.shards, 2);
    assert_eq!(r.sessions, 32);
    assert!(r.steps_per_sec > 0.0, "{r:?}");
    assert!(r.p99_us >= r.p50_us, "{r:?}");
    let out = pram_bench::serve::render(&rows, &ctx);
    assert_eq!(
        out.lines()
            .filter(|l| l.starts_with("{\"experiment\":\"E16\""))
            .count(),
        1,
        "one JSON row per grid point:\n{out}"
    );
    assert!(
        out.contains("Excluded") && out.contains("hp-2dmot"),
        "routed schemes must be named, not silently dropped:\n{out}"
    );
}

#[test]
fn e15_rows_report_latency_quantiles() {
    let ctx = RunCtx::seeded(16)
        .with_schemes(vec![SchemeKind::Hashed])
        .with_quick(true);
    let rows = pram_bench::throughput::rows(&ctx);
    let r = &rows[0];
    assert!(r.p50_us > 0.0, "{r:?}");
    assert!(r.p99_us >= r.p50_us, "{r:?}");
    let json = r.to_json();
    assert!(
        pram_bench::throughput::json_field(&json, "p99_us").is_some(),
        "{json}"
    );
}

#[test]
fn scheme_list_lines_name_and_describe_every_scheme() {
    let lines = pram_bench::scheme_list_lines();
    assert_eq!(lines.len(), SchemeKind::ALL.len());
    for (line, kind) in lines.iter().zip(SchemeKind::ALL) {
        assert!(line.contains(kind.name()), "{line}");
        assert!(line.contains(kind.describe()), "{line}");
        assert!(line.contains('—'), "list format is 'name — description'");
    }
}

#[test]
fn registry_is_complete_and_unique() {
    let reg = pram_bench::registry();
    assert_eq!(reg.len(), 18);
    let mut ids: Vec<&str> = reg.iter().map(|&(id, _, _)| id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), 18, "experiment ids must be unique");
    assert!(
        ids.contains(&"throughput"),
        "E15 must be listed by `repro --list`"
    );
    assert!(
        ids.contains(&"serve"),
        "E16 must be listed by `repro --list`"
    );
    assert!(
        ids.contains(&"verify-overhead"),
        "E17 must be listed by `repro --list`"
    );
}
