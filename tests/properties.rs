//! Randomized property tests on the workspace's core invariants.
//!
//! Implemented over the workspace's own deterministic RNG (`simrng`)
//! rather than an external property-testing framework, so the sampled
//! cases are bit-reproducible from the seeds below and the test needs no
//! network-fetched dependencies. Every property runs many independently
//! seeded cases; a failure message carries the case seed.

use pramsim::core::{SchemeKind, SimBuilder};
use pramsim::machine::{IdealMemory, SharedMemory};
use pramsim::memdist::{MemoryMap, ReplicatedStore};
use pramsim::simrng::{rng_from_seed, Rng};

/// A random step plan: up to `n` distinct addresses split into reads and
/// writes, with random values.
fn random_step(
    rng: &mut impl Rng,
    n: usize,
    m: usize,
    step: usize,
) -> (Vec<usize>, Vec<(usize, i64)>) {
    let k = 1 + rng.index(n.min(m));
    let addrs = rng.sample_distinct(m as u64, k);
    let split = rng.index(k + 1);
    let reads: Vec<usize> = addrs[..split].iter().map(|&a| a as usize).collect();
    let writes: Vec<(usize, i64)> = addrs[split..]
        .iter()
        .map(|&a| (a as usize, rng.next_u64() as i64 ^ step as i64))
        .collect();
    (reads, writes)
}

/// Drive a scheme and the ideal memory with the same steps; every read
/// must agree (sequential consistency of the simulation).
fn check_against_ideal(
    mem: &mut dyn SharedMemory,
    n: usize,
    m: usize,
    case_seed: u64,
    steps: usize,
) {
    let mut ideal = IdealMemory::new(m);
    let mut rng = rng_from_seed(case_seed);
    for step in 0..steps {
        let (reads, writes) = random_step(&mut rng, n, m, step);
        let got = mem.access(&reads, &writes);
        let expect = ideal.access(&reads, &writes);
        assert_eq!(
            got.read_values, expect.read_values,
            "case seed {case_seed}, step {step}, reads {reads:?}"
        );
    }
}

#[test]
fn every_scheme_sequentially_consistent() {
    for kind in SchemeKind::ALL {
        // The cycle-level mesh schemes route every packet; keep their
        // instances smaller so the matrix stays fast.
        let (n, m, cases, steps) = match kind {
            SchemeKind::Hp2dmotLeaves | SchemeKind::Lpp2dmot => (4, 32, 4, 6),
            _ => (8, 64, 8, 12),
        };
        for case in 0..cases {
            let case_seed = 0xC0FFEE ^ (case as u64) << 8;
            let mut scheme = SimBuilder::new(n, m)
                .kind(kind)
                .seed(case_seed)
                .build()
                .unwrap();
            check_against_ideal(scheme.as_mut(), n, m, case_seed, steps);
        }
    }
}

#[test]
fn quorum_intersection_holds() {
    // Any write quorum of size c followed by any read quorum of size c
    // yields the written value (r = 2c - 1).
    let mut rng = rng_from_seed(0x9E3779B9);
    for case in 0..200 {
        let c = 2 + rng.index(4);
        let r = 2 * c - 1;
        let value = rng.next_u64() as i64;
        let map = MemoryMap::random(4, 4 * r, r, 1);
        let mut store = ReplicatedStore::new(&map);
        let wq: Vec<usize> = rng
            .sample_distinct(r as u64, c)
            .into_iter()
            .map(|x| x as usize)
            .collect();
        let rq: Vec<usize> = rng
            .sample_distinct(r as u64, c)
            .into_iter()
            .map(|x| x as usize)
            .collect();
        store.write_quorum(0, &wq, value, 7);
        assert_eq!(
            store.read_majority(0, &rq),
            value,
            "case {case}: c={c}, write quorum {wq:?}, read quorum {rq:?}"
        );
    }
}

#[test]
fn maps_have_distinct_copy_modules() {
    // Memory maps always place a variable's copies in distinct modules.
    let mut rng = rng_from_seed(0xDEADBEEF);
    for case in 0..150 {
        let m = 1 + rng.index(200);
        let modules = 1usize << (3 + rng.index(5));
        let r = 1 + rng.index(5.min(modules));
        let seed = rng.next_u64();
        let map = MemoryMap::random(m, modules, r, seed);
        assert!(
            map.validate().is_ok(),
            "case {case}: m={m}, modules={modules}, r={r}, seed={seed}"
        );
    }
}

#[test]
fn builder_rejections_are_total() {
    // Randomly sampled infeasible configurations must yield Err, never a
    // panic and never a silently clamped scheme.
    use pramsim::core::SchemeConfig;
    let mut rng = rng_from_seed(0xBADC0DE);
    for _ in 0..100 {
        let n = 1 + rng.index(32);
        let m = 1 + rng.index(512);
        let kind = SchemeKind::ALL[rng.index(4)]; // the copy-based four
        let modules_default = match kind {
            SchemeKind::UwMpc | SchemeKind::Lpp2dmot => n.max(2),
            _ => SchemeConfig::for_pram(n, m).modules,
        };
        // A c too large for the module count must be rejected.
        let c = modules_default / 2 + 2 + rng.index(8);
        let built = SimBuilder::new(n, m).kind(kind).c(c).build();
        assert!(
            built.is_err(),
            "{kind} with n={n}, c={c} (r={}) over {modules_default} default modules must not build",
            2 * c - 1
        );
    }
}

#[test]
fn scheme_diagnostics_accumulate_monotonically() {
    for kind in SchemeKind::ALL {
        let mut s = SimBuilder::new(8, 64).kind(kind).build().unwrap();
        let mut prev_requests = 0;
        let mut rng = rng_from_seed(42);
        for step in 0..10 {
            let (reads, writes) = random_step(&mut rng, 8, 64, step);
            s.access(&reads, &writes);
            let (tot, steps) = s.totals();
            assert_eq!(steps, step as u64 + 1, "{kind}");
            assert!(tot.requests > prev_requests, "{kind} must count requests");
            assert_eq!(s.last_step().requests, reads.len() + writes.len(), "{kind}");
            prev_requests = tot.requests;
        }
    }
}
