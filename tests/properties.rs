//! Property-based tests on the workspace's core invariants.

use proptest::prelude::*;
use pramsim::core::{Hp2dmotLeaves, HpDmmpc, IdaShared, UwMpc};
use pramsim::machine::{IdealMemory, SharedMemory};
use pramsim::memdist::{MemoryMap, ReplicatedStore};

/// A step plan: distinct addresses split into reads and writes.
fn step_strategy(n: usize, m: usize) -> impl Strategy<Value = (Vec<usize>, Vec<(usize, i64)>)> {
    (1..=n.min(m))
        .prop_flat_map(move |k| {
            (
                proptest::sample::subsequence((0..m).collect::<Vec<_>>(), k),
                0..=k,
                proptest::collection::vec(any::<i64>(), k),
            )
        })
        .prop_map(|(addrs, split, vals)| {
            let reads = addrs[..split.min(addrs.len())].to_vec();
            let writes = addrs[split.min(addrs.len())..]
                .iter()
                .zip(vals)
                .map(|(&a, v)| (a, v))
                .collect();
            (reads, writes)
        })
}

/// Drive a scheme and the ideal memory with the same steps; every read must
/// agree (sequential consistency of the simulation).
fn check_against_ideal<M: SharedMemory>(
    mem: &mut M,
    ideal: &mut IdealMemory,
    steps: &[(Vec<usize>, Vec<(usize, i64)>)],
) -> Result<(), TestCaseError> {
    for (reads, writes) in steps {
        let got = mem.access(reads, writes);
        let expect = ideal.access(reads, writes);
        prop_assert_eq!(&got.read_values, &expect.read_values);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, .. ProptestConfig::default() })]

    #[test]
    fn hp_dmmpc_sequentially_consistent(
        steps in proptest::collection::vec(step_strategy(8, 64), 1..12)
    ) {
        let mut scheme = HpDmmpc::for_pram(8, 64);
        let mut ideal = IdealMemory::new(64);
        check_against_ideal(&mut scheme, &mut ideal, &steps)?;
    }

    #[test]
    fn uw_mpc_sequentially_consistent(
        steps in proptest::collection::vec(step_strategy(8, 64), 1..12)
    ) {
        let mut scheme = UwMpc::for_pram(8, 64);
        let mut ideal = IdealMemory::new(64);
        check_against_ideal(&mut scheme, &mut ideal, &steps)?;
    }

    #[test]
    fn ida_sequentially_consistent(
        steps in proptest::collection::vec(step_strategy(8, 64), 1..12)
    ) {
        let mut scheme = IdaShared::for_pram(8, 64);
        let mut ideal = IdealMemory::new(64);
        check_against_ideal(&mut scheme, &mut ideal, &steps)?;
    }

    #[test]
    fn mot_sequentially_consistent(
        steps in proptest::collection::vec(step_strategy(4, 32), 1..6)
    ) {
        let mut scheme = Hp2dmotLeaves::for_pram(4, 32);
        let mut ideal = IdealMemory::new(32);
        check_against_ideal(&mut scheme, &mut ideal, &steps)?;
    }

    /// Quorum intersection: any write quorum of size c followed by any read
    /// quorum of size c yields the written value (r = 2c-1).
    #[test]
    fn quorum_intersection_holds(
        c in 2usize..6,
        wseed in any::<u64>(),
        rseed in any::<u64>(),
        value in any::<i64>(),
    ) {
        use pramsim::simrng::{rng_from_seed, Rng};
        let r = 2 * c - 1;
        let map = MemoryMap::random(4, 4 * r, r, 1);
        let mut store = ReplicatedStore::new(&map);
        let mut wrng = rng_from_seed(wseed);
        let mut rrng = rng_from_seed(rseed);
        let wq: Vec<usize> =
            wrng.sample_distinct(r as u64, c).into_iter().map(|x| x as usize).collect();
        let rq: Vec<usize> =
            rrng.sample_distinct(r as u64, c).into_iter().map(|x| x as usize).collect();
        store.write_quorum(0, &wq, value, 7);
        prop_assert_eq!(store.read_majority(0, &rq), value);
    }

    /// Memory maps always place a variable's copies in distinct modules.
    #[test]
    fn maps_have_distinct_copy_modules(
        m in 1usize..200,
        modules_pow in 3u32..8,
        r in 1usize..6,
        seed in any::<u64>(),
    ) {
        let modules = 1usize << modules_pow;
        prop_assume!(r <= modules);
        let map = MemoryMap::random(m, modules, r, seed);
        prop_assert!(map.validate().is_ok());
    }
}
