//! The flat data plane's headline invariant, asserted: after warm-up, the
//! DMMPC protocol path performs **zero heap allocations** per step — and
//! therefore per phase (DESIGN.md §7).
//!
//! This test binary installs the counting global allocator from
//! `metrics::counting` (each Rust test binary may have its own global
//! allocator), warms a scheme/workspace to steady-state capacity, and then
//! counts allocations across whole protocol runs.
//!
//! Counting windows use the **thread-attributed** counter
//! (`counting::thread_allocations`), not the process-global one: libtest
//! runs tests on worker threads and allocates on the main thread (test
//! spawning, event plumbing), which polluted process-global windows under
//! load. Each window here counts exactly what *its* thread allocated, so
//! the assertions stay strict per-window.

use pramsim::core::protocol::{run_protocol, FlatPlacement, ProtocolWorkspace};
use pramsim::core::{executors::BipartiteExec, SchemeKind, SimBuilder};
use pramsim::memdist::{Clusters, MemoryMap};
use pramsim::metrics::counting;
use pramsim::simrng::rng_from_seed;

#[global_allocator]
static ALLOC: counting::CountingAlloc = counting::CountingAlloc;

/// Zero allocations across entire `run_protocol` calls (hence zero per
/// phase) on the DMMPC path, once the workspace has warmed up.
#[test]
fn dmmpc_protocol_steps_allocate_nothing_after_warmup() {
    assert!(
        counting::is_active(),
        "counting allocator must be installed"
    );
    let (n, m) = (256usize, 1024usize);
    let cfg = SimBuilder::new(n, m)
        .kind(SchemeKind::HpDmmpc)
        .seed(3)
        .fine_config()
        .expect("regime is feasible");
    let r = cfg.redundancy();
    let map = MemoryMap::random(cfg.m, cfg.modules, r, cfg.seed);
    let clusters = Clusters::new(n, r);
    let mut exec = BipartiteExec::new(cfg.modules);
    let mut ws = ProtocolWorkspace::new();

    // A mix of step shapes, including the largest first — warm-up must
    // leave every buffer at its high-water capacity.
    let mut rng = rng_from_seed(77);
    let steps: Vec<Vec<(usize, usize)>> = (0..6)
        .map(|k| {
            let p = workloads::uniform(n - 16 * k, m, 0.0, &mut rng);
            p.reads.iter().copied().enumerate().collect()
        })
        .collect();
    let drive = |exec: &mut BipartiteExec, ws: &mut ProtocolWorkspace| {
        for rq in &steps {
            let stats = run_protocol(
                rq,
                &clusters,
                cfg.c,
                r,
                &map,
                &FlatPlacement,
                exec,
                cfg.stage1_phases,
                cfg.stage2_pipeline,
                ws,
            );
            assert_eq!(stats.failed_requests, 0);
        }
    };

    drive(&mut exec, &mut ws); // warm-up: buffers grow to steady state
    let before = counting::thread_allocations();
    drive(&mut exec, &mut ws);
    drive(&mut exec, &mut ws);
    let after = counting::thread_allocations();
    assert_eq!(
        after - before,
        0,
        "steady-state DMMPC protocol steps must not allocate"
    );
}

/// Every member of the zoo is bounded by the API's one unavoidable
/// allocation per step — the returned `read_values` vector — once warm.
/// This pins the regression class the IDA/hashed flattening fixed
/// (per-step `HashMap`s, Vec-returning codec calls, per-request
/// `collect()`s): a scheme whose data plane re-grows hidden allocations
/// fails its own row here, by name.
#[test]
fn every_scheme_allocates_at_most_the_result_vector_per_step() {
    assert!(
        counting::is_active(),
        "counting allocator must be installed"
    );
    for kind in SchemeKind::ALL {
        // The routed 2DMOT schemes simulate every packet; keep their
        // instances small (same policy as E15 and the golden snapshots).
        let (n, m) = match kind {
            SchemeKind::Hp2dmotLeaves | SchemeKind::Lpp2dmot => (8, 32),
            _ => (64, 256),
        };
        let mut s = SimBuilder::new(n, m)
            .kind(kind)
            .seed(9)
            .build()
            .expect("zoo regimes are feasible");
        let mut rng = rng_from_seed(79);
        let pool: Vec<workloads::StepPattern> = (0..8)
            .map(|_| workloads::uniform(n, m, 0.3, &mut rng))
            .collect();
        // Warm-up: several pool passes, so every reusable buffer reaches
        // its high-water capacity. (IDA's decode-matrix cache is already
        // complete at build time — the store prewarms one inverse per
        // write-rotation offset — so warm-up only grows plain buffers.)
        for _ in 0..4 {
            for p in &pool {
                s.access(&p.reads, &p.writes);
            }
        }
        let steps = 48;
        let before = counting::thread_allocations();
        for i in 0..steps {
            let p = &pool[i % pool.len()];
            s.access(&p.reads, &p.writes);
        }
        let allocs = counting::thread_allocations() - before;
        assert!(
            allocs <= steps as u64,
            "{kind}: expected ≤ 1 allocation per access (the read_values \
             result), got {allocs} over {steps} steps"
        );
        let (tot, warm_steps) = s.totals();
        assert_eq!(warm_steps as usize, 32 + steps);
        assert!(tot.requests > 0);
    }
}

/// The full scheme step (`access`) on the DMMPC path is bounded by the
/// API's one unavoidable allocation — the returned `read_values` vector —
/// once warm. (The protocol underneath contributes zero; see above.)
#[test]
fn dmmpc_access_steps_allocate_only_the_result_vector() {
    let (n, m) = (64usize, 256usize);
    let mut s = SimBuilder::new(n, m)
        .kind(SchemeKind::HpDmmpc)
        .seed(4)
        .build()
        .expect("regime is feasible");
    let mut rng = rng_from_seed(78);
    let pool: Vec<workloads::StepPattern> = (0..8)
        .map(|_| workloads::uniform(n, m, 0.3, &mut rng))
        .collect();
    for p in &pool {
        s.access(&p.reads, &p.writes); // warm-up
    }
    let steps = 32;
    let before = counting::thread_allocations();
    for i in 0..steps {
        let p = &pool[i % pool.len()];
        s.access(&p.reads, &p.writes);
    }
    let allocs = counting::thread_allocations() - before;
    assert!(
        allocs <= steps as u64,
        "expected ≤ 1 allocation per access (the read_values result), got {allocs} over {steps} steps"
    );
    let (tot, _) = s.totals();
    assert!(tot.phases > 0, "the steps actually ran the protocol");
}
