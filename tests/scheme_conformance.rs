//! Cross-scheme conformance suite: one matrix over [`SchemeKind::ALL`].
//!
//! Every scheme the [`SimBuilder`] can construct must (a) produce the
//! ideal machine's results for every classic P-RAM program — the schemes
//! are not request-level mocks, the whole instruction-level machine runs
//! on top of them — and (b) answer the uniform [`Scheme`] diagnostics
//! coherently. Adding a scheme to the zoo automatically adds it to this
//! matrix.

use pramsim::core::{Scheme, SchemeKind, SimBuilder};
use pramsim::machine::{
    programs, IdealMemory, Mode, Pram, Program, SharedMemory, Word, WritePolicy,
};

/// Run `prog` on `mem`, with `init` setting up inputs; return the
/// `outputs` cells.
fn run_on(
    mem: &mut dyn SharedMemory,
    prog: &Program,
    n: usize,
    mode: Mode,
    init: &[(usize, Word)],
    outputs: std::ops::Range<usize>,
) -> Vec<Word> {
    for &(a, v) in init {
        mem.poke(a, v);
    }
    Pram::new(n, mode)
        .run(prog, mem)
        .expect("program must run clean");
    outputs.map(|a| mem.peek(a)).collect()
}

/// The conformance matrix: every scheme must match the ideal machine.
fn check_program(
    name: &str,
    prog: Program,
    n: usize,
    m: usize,
    mode: Mode,
    init: Vec<(usize, Word)>,
    outputs: std::ops::Range<usize>,
) {
    let mut ideal = IdealMemory::new(m);
    let expect = run_on(&mut ideal, &prog, n, mode, &init, outputs.clone());
    for kind in SchemeKind::ALL {
        let mut mem = SimBuilder::new(n, m)
            .kind(kind)
            .build()
            .unwrap_or_else(|e| panic!("{kind} must build for n={n}, m={m}: {e}"));
        let got = run_on(mem.as_mut(), &prog, n, mode, &init, outputs.clone());
        assert_eq!(got, expect, "{name} differs on {kind}");
        // Uniform diagnostics stay coherent after a real program ran.
        let (tot, steps) = mem.totals();
        assert!(steps > 0, "{kind} executed no steps");
        assert!(tot.requests > 0, "{kind} served no requests");
        assert_eq!(mem.params().kind, kind);
        assert!(mem.redundancy() >= 1.0);
    }
}

#[test]
fn parallel_sum_everywhere() {
    let n = 8;
    let m = programs::parallel_sum_layout(n);
    let init: Vec<(usize, Word)> = (0..n).map(|i| (i, (3 * i + 2) as Word)).collect();
    check_program(
        "parallel_sum",
        programs::parallel_sum(n),
        n,
        m,
        Mode::Erew,
        init,
        0..1,
    );
}

#[test]
fn prefix_sum_everywhere() {
    let n = 8;
    let m = programs::prefix_sum_layout(n);
    let init: Vec<(usize, Word)> = (0..n).map(|i| (i, (i * i) as Word)).collect();
    check_program(
        "prefix_sum",
        programs::prefix_sum(n),
        n,
        m,
        Mode::Erew,
        init,
        0..n,
    );
}

#[test]
fn broadcast_erew_everywhere() {
    let n = 8;
    let m = programs::broadcast_erew_layout(n);
    check_program(
        "broadcast_erew",
        programs::broadcast_erew(n),
        n,
        m,
        Mode::Erew,
        vec![(0, 777)],
        0..n,
    );
}

#[test]
fn broadcast_crew_everywhere() {
    let n = 8;
    check_program(
        "broadcast_crew",
        programs::broadcast_crew(),
        n,
        n,
        Mode::Crew,
        vec![(0, 55)],
        0..n,
    );
}

#[test]
fn max_crcw_everywhere() {
    let n = 8;
    let m = programs::max_crcw_layout(n);
    let init: Vec<(usize, Word)> = (0..n).map(|i| (i, [3, 1, 4, 1, 5, 9, 2, 6][i])).collect();
    check_program(
        "max_crcw",
        programs::max_crcw(n),
        n,
        m,
        Mode::Crcw(WritePolicy::Max),
        init,
        n..n + 1,
    );
}

#[test]
fn list_ranking_everywhere() {
    let n = 8;
    let m = programs::list_ranking_layout(n);
    // Chain 7 -> 6 -> ... -> 0 (terminal).
    let mut init: Vec<(usize, Word)> = Vec::new();
    for i in 0..n {
        init.push((i, if i == 0 { 0 } else { (i - 1) as Word }));
        init.push((n + i, if i == 0 { 0 } else { 1 }));
    }
    check_program(
        "list_ranking",
        programs::list_ranking(n),
        n,
        m,
        Mode::Crew,
        init,
        n..2 * n,
    );
}

#[test]
fn matvec_everywhere() {
    let (rows, cols) = (4, 4);
    let n = rows * cols;
    let m = programs::matvec_layout(rows, cols);
    let mut init: Vec<(usize, Word)> = Vec::new();
    for i in 0..rows {
        for j in 0..cols {
            init.push((i * cols + j, (i as Word) - (j as Word)));
        }
    }
    for j in 0..cols {
        init.push((rows * cols + j, j as Word + 1));
    }
    let y_base = 2 * rows * cols + cols;
    check_program(
        "matvec",
        programs::matvec(rows, cols),
        n,
        m,
        Mode::Crew,
        init,
        y_base..y_base + rows,
    );
}

#[test]
fn odd_even_sort_everywhere() {
    let n = 8;
    let m = programs::odd_even_sort_layout(n);
    let init: Vec<(usize, Word)> = (0..n).map(|i| (i, [9, 2, 7, 2, 5, 0, 8, 1][i])).collect();
    check_program(
        "odd_even_sort",
        programs::odd_even_sort(n),
        n,
        m,
        Mode::Erew,
        init,
        0..n,
    );
}

#[test]
fn erew_violations_rejected_on_schemes_too() {
    // The conflict semantics live in the machine, not the backend: a CREW
    // program under EREW mode must fail identically on every scheme.
    let n = 4;
    for kind in SchemeKind::ALL {
        let mut mem = SimBuilder::new(n, n).kind(kind).build().unwrap();
        let err = Pram::new(n, Mode::Erew).run(&programs::broadcast_crew(), mem.as_mut());
        assert!(err.is_err(), "{kind} must surface the EREW violation");
    }
}

#[test]
fn builder_is_the_one_construction_path() {
    // The whole zoo is reachable by name — what `repro --scheme` uses.
    for kind in SchemeKind::ALL {
        let parsed: SchemeKind = kind.name().parse().unwrap();
        let s = SimBuilder::new(8, 64).kind(parsed).build().unwrap();
        assert_eq!(Scheme::name(s.as_ref()), kind.name());
    }
}
