//! The paper's central claim, measured: memory granularity buys off
//! redundancy.
//!
//! ```sh
//! cargo run --release --example granularity_sweep
//! ```
//!
//! For fixed `n` and `m = n²`, sweep the module count `M = n^{1+ε}` and,
//! for each granularity, report
//!
//! * the Theorem 1 adversary's forced step time at constant redundancy
//!   (r = 5) — the *lower bound* side, and
//! * the measured phases per step of the majority-rule protocol at that
//!   same constant redundancy — the *upper bound* side.
//!
//! Coarse memory (ε = 0, the MPC) is polynomially slow at constant
//! redundancy; fine memory (ε > 0) is polylog. That crossover is the paper.

use pramsim::core::{concentration_adversary, SchemeKind, SimBuilder};
use pramsim::memdist::MemoryMap;
use pramsim::simrng::rng_from_seed;

fn main() {
    let n = 64;
    let m = n * n;
    let c = 3; // constant quorum parameter -> r = 5 everywhere
    let r = 2 * c - 1;
    let seed = pramsim::simrng::DEFAULT_SEED;

    println!("n = {n}, m = n^2 = {m}, constant redundancy r = {r}\n");
    println!(
        "{:>6} {:>6} {:>22} {:>22}",
        "M", "eps", "forced time (Thm 1)", "measured phases/step"
    );

    for modules in [64usize, 128, 256, 512, 1024, 2048, 4096] {
        let eps = (modules as f64).ln() / (n as f64).ln() - 1.0;

        // Lower-bound side: the concentration adversary.
        let map = MemoryMap::random(m, modules, r, seed);
        let attack = concentration_adversary(&map, n);

        // Upper-bound side: measured protocol phases on uniform steps,
        // through the builder at this exact granularity and redundancy.
        let mut scheme = SimBuilder::new(n, m)
            .kind(SchemeKind::HpDmmpc)
            .modules(modules)
            .c(c)
            .seed(seed)
            .build()
            .expect("every swept granularity holds r distinct copies");
        let mut rng = rng_from_seed(seed ^ 0xABCD);
        let mut phases = 0u64;
        let steps = 5;
        for _ in 0..steps {
            let pat = pramsim::workloads::uniform(n, m, 0.3, &mut rng);
            phases += scheme.access(&pat.reads, &pat.writes).cost.phases;
        }

        println!(
            "{:>6} {:>6.2} {:>22.2} {:>22.1}",
            modules,
            eps,
            attack.forced_time,
            phases as f64 / steps as f64
        );
    }

    println!(
        "\nReading: at M = n (eps = 0) the adversary forces ~(m/n)^(1/r) time,\n\
         and the protocol stalls correspondingly; as M grows past n^1.5 both\n\
         collapse to polylog - constant redundancy becomes sufficient, which\n\
         is Theorems 1 + 2 of the paper in one table."
    );
}
