//! Quickstart: run a real P-RAM program through the paper's
//! constant-redundancy simulation schemes.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds an EREW prefix-sum program, executes it on (a) the ideal P-RAM,
//! (b) the Theorem 2 DMMPC scheme, and (c) the Theorem 3 2DMOT scheme, and
//! shows that the results agree while the realistic machines pay measured
//! phases/cycles per step.
//!
//! Scheme (b) goes through [`SimBuilder`] — the canonical construction
//! path. Scheme (c) demonstrates the power-user path: a builder-validated
//! [`SchemeConfig`] handed to the concrete type, which exposes
//! interconnect diagnostics (`side`, `switches`) the uniform [`Scheme`]
//! trait deliberately leaves out.

use pramsim::core::{Hp2dmotLeaves, SchemeKind, SimBuilder};
use pramsim::machine::{programs, IdealMemory, Mode, Pram, SharedMemory};

fn run_prefix_sum(mem: &mut dyn SharedMemory, n: usize) -> (Vec<i64>, u64, u64) {
    // input[i] = i + 1  ->  prefix[i] = (i+1)(i+2)/2
    for i in 0..n {
        mem.poke(i, (i + 1) as i64);
    }
    let report = Pram::new(n, Mode::Erew)
        .run(&programs::prefix_sum(n), mem)
        .expect("prefix_sum is EREW-clean");
    let out = (0..n).map(|i| mem.peek(i)).collect();
    (out, report.cost.phases, report.cost.cycles)
}

fn main() {
    let n = 16;
    let m = programs::prefix_sum_layout(n);
    let expect: Vec<i64> = (0..n as i64).map(|i| (i + 1) * (i + 2) / 2).collect();

    println!("EREW prefix sum, n = {n} processors, m = {m} shared cells\n");

    let mut ideal = IdealMemory::new(m);
    let (got, phases, cycles) = run_prefix_sum(&mut ideal, n);
    assert_eq!(got, expect);
    println!("ideal P-RAM        : correct, {phases:>5} phases, {cycles:>6} cycles (unit-cost)");

    // The canonical path: one validated builder for any scheme in the zoo.
    let mut dmmpc = SimBuilder::new(n, m)
        .kind(SchemeKind::HpDmmpc)
        .build()
        .expect("default fine-grain regime is feasible");
    let r = dmmpc.redundancy();
    let modules = dmmpc.modules();
    let (got, phases, cycles) = run_prefix_sum(dmmpc.as_mut(), n);
    assert_eq!(got, expect);
    println!(
        "HP DMMPC (Thm 2)   : correct, {phases:>5} phases, {cycles:>6} cycles \
         (r = {r:.0} copies, M = {modules} modules)"
    );

    // The power-user path: validate through the builder, construct the
    // concrete type for interconnect-specific diagnostics.
    let cfg = SimBuilder::new(n, m)
        .kind(SchemeKind::Hp2dmotLeaves)
        .fine_config()
        .expect("default fine-grain regime is feasible");
    let mut motm = Hp2dmotLeaves::new(&cfg);
    let side = motm.side();
    let switches = motm.switches();
    let (got, phases, cycles) = run_prefix_sum(&mut motm, n);
    assert_eq!(got, expect);
    println!(
        "HP 2DMOT (Thm 3)   : correct, {phases:>5} phases, {cycles:>6} cycles \
         ({side}x{side} mesh of trees, {switches} switches)"
    );

    println!("\nSame answers, realistic costs - that is the whole reproduction in one screen.");
}
