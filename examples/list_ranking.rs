//! CREW pointer jumping over simulated shared memory.
//!
//! ```sh
//! cargo run --release --example list_ranking
//! ```
//!
//! List ranking is the classic "irregular" P-RAM workload: every round each
//! processor chases a pointer whose target is data-dependent, so the memory
//! access pattern is scattered and concurrent — exactly what the
//! deterministic simulation schemes have to survive. This example ranks a
//! shuffled 32-node list on the ideal machine, the Theorem 2 DMMPC scheme,
//! and the IDA (Schuster) alternative, comparing costs.

use pramsim::core::{SchemeKind, SimBuilder};
use pramsim::machine::{programs, IdealMemory, Mode, Pram, SharedMemory};
use pramsim::simrng::{rng_from_seed, Rng};

/// Build a random list threading all n nodes; returns (succ, rank_expect).
fn random_list(n: usize, seed: u64) -> (Vec<usize>, Vec<i64>) {
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = rng_from_seed(seed);
    rng.shuffle(&mut order);
    let mut succ = vec![0usize; n];
    let mut rank = vec![0i64; n];
    for (k, &node) in order.iter().enumerate() {
        succ[node] = if k == 0 { node } else { order[k - 1] };
        rank[node] = k as i64;
    }
    (succ, rank)
}

fn rank_on(mem: &mut dyn SharedMemory, n: usize, succ: &[usize]) -> (Vec<i64>, u64) {
    for (i, &s) in succ.iter().enumerate() {
        mem.poke(i, s as i64);
        mem.poke(n + i, if s == i { 0 } else { 1 });
    }
    let report = Pram::new(n, Mode::Crew)
        .run(&programs::list_ranking(n), mem)
        .expect("list ranking is CREW-clean");
    (
        (0..n).map(|i| mem.peek(n + i)).collect(),
        report.cost.phases,
    )
}

fn main() {
    let n = 32;
    let m = programs::list_ranking_layout(n);
    let (succ, expect) = random_list(n, 2026);

    let mut ideal = IdealMemory::new(m);
    let (ranks, phases) = rank_on(&mut ideal, n, &succ);
    assert_eq!(ranks, expect);
    println!("ideal P-RAM      : ranked {n} nodes, {phases} unit-cost steps");

    let mut dmmpc = SimBuilder::new(n, m)
        .kind(SchemeKind::HpDmmpc)
        .build()
        .unwrap();
    let (ranks, phases) = rank_on(dmmpc.as_mut(), n, &succ);
    assert_eq!(ranks, expect);
    println!(
        "HP DMMPC (Thm 2) : same ranks, {phases} phases with r = {:.0} copies",
        dmmpc.redundancy()
    );

    let mut ida_mem = SimBuilder::new(n, m).kind(SchemeKind::Ida).build().unwrap();
    let (ranks, phases) = rank_on(ida_mem.as_mut(), n, &succ);
    assert_eq!(ranks, expect);
    println!(
        "IDA (Schuster)   : same ranks, {phases} phases at {:.1}x storage blowup",
        ida_mem.redundancy()
    );

    println!("\nPointer chasing scatters requests across modules every round;");
    println!("the quorum protocols keep every read consistent regardless.");
}
