//! The 2DMOT's original purpose vs its P-RAM-simulation role.
//!
//! ```sh
//! cargo run --release --example matvec_2dmot
//! ```
//!
//! Nath, Maheshwari & Bhatt (1983) proposed the orthogonal-trees network to
//! compute `y = A·x` in `O(log n)` cycles. The paper reuses the same fabric
//! as a memory interconnect. This example computes the same product both
//! ways:
//!
//! 1. **natively** on the tree fabric (broadcast → multiply → reduce);
//! 2. as a **CREW P-RAM program** whose shared memory is simulated by the
//!    paper's Theorem 3 scheme on that very network.

use pramsim::core::{SchemeKind, SimBuilder};
use pramsim::machine::{programs, Mode, Pram};
use pramsim::mot::{primitives, MotTopology};

fn main() {
    let side = 8; // matrix dimension and native grid side
    let rows = side;
    let cols = side;

    // A[i][j] = (i + 2j) mod 7 - 3, x[j] = j + 1.
    let a: Vec<i64> = (0..rows * cols)
        .map(|idx| ((idx / cols + 2 * (idx % cols)) % 7) as i64 - 3)
        .collect();
    let x: Vec<i64> = (1..=cols as i64).collect();
    let reference: Vec<i64> = (0..rows)
        .map(|i| (0..cols).map(|j| a[i * cols + j] * x[j]).sum())
        .collect();

    // --- 1. native tree computation ------------------------------------
    let fabric = MotTopology::new(side);
    let (y_native, native_cycles) = primitives::matvec(&fabric, &a, &x);
    assert_eq!(y_native, reference);
    println!(
        "native 2DMOT ({side}x{side})      : y = A*x in {native_cycles} cycles \
         (= 2*log2({side}) + 1)"
    );

    // --- 2. P-RAM program over simulated shared memory ------------------
    let n = rows * cols;
    let m = programs::matvec_layout(rows, cols);
    let mut shared = SimBuilder::new(n, m)
        .kind(SchemeKind::Hp2dmotLeaves)
        .build()
        .expect("default fine-grain regime is feasible");
    for (idx, &v) in a.iter().enumerate() {
        shared.poke(idx, v);
    }
    for (j, &v) in x.iter().enumerate() {
        shared.poke(rows * cols + j, v);
    }
    let report = Pram::new(n, Mode::Crew)
        .run(&programs::matvec(rows, cols), shared.as_mut())
        .expect("matvec program is CREW-clean");
    let y_base = 2 * rows * cols + cols;
    let y_pram: Vec<i64> = (0..rows).map(|i| shared.peek(y_base + i)).collect();
    assert_eq!(y_pram, reference);
    println!(
        "P-RAM on HP 2DMOT (Thm 3) : same y in {} simulated cycles \
         ({} protocol phases over {} shared steps)",
        report.cost.cycles, report.cost.phases, report.shared_steps,
    );

    let slowdown = report.cost.cycles as f64 / native_cycles as f64;
    println!(
        "\nGenerality costs ~{slowdown:.0}x here: the simulation routes every copy\n\
         of every variable, while the native algorithm exploits the topology.\n\
         The paper's point is that the *same* bounded-degree hardware supports\n\
         both: special-purpose speed when you have it, general P-RAM programs\n\
         with constant memory redundancy when you don't."
    );
}
