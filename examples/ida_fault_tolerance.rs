//! Information dispersal in action: reading through module failures.
//!
//! ```sh
//! cargo run --release --example ida_fault_tolerance
//! ```
//!
//! Rabin's IDA (the engine of Schuster's constant-space scheme, paper §1)
//! recodes each block of `b` symbols into `d` shares such that any `b`
//! recover the data. With quorum `(d+b)/2`, up to `(d−b)/2` memory modules
//! can vanish and every variable remains readable — redundancy as fault
//! tolerance, not just bandwidth.

use pramsim::ida::SchusterStore;
use pramsim::simrng::{rng_from_seed, Rng};

fn main() {
    let vars = 256;
    let modules = 48;
    let (b, d) = (8, 12); // blowup 1.5, quorum 10, failure margin (d-b)/2 = 2
    let mut store = SchusterStore::new(vars, modules, b, d);
    println!(
        "SchusterStore: {vars} variables, {modules} modules, b={b}, d={d} \
         (blowup {:.2}, quorum {})",
        store.blowup(),
        store.quorum()
    );

    // Populate with recognizable values.
    let mut rng = rng_from_seed(77);
    let mut reference = vec![0i64; vars];
    for (v, slot) in reference.iter_mut().enumerate() {
        let val = (v as i64) * 1_000 + rng.below(1000) as i64;
        store.write(v, val);
        *slot = val;
    }

    // Kill modules one at a time and keep reading everything.
    let mut dead = vec![false; modules];
    for wave in 0..4 {
        let mut readable = 0;
        let mut lost = 0;
        for (v, &expect) in reference.iter().enumerate() {
            match store.read_with_unavailable(v, &dead) {
                Some((val, _)) => {
                    assert_eq!(val, expect, "corruption would be a bug");
                    readable += 1;
                }
                None => lost += 1,
            }
        }
        println!(
            "{} dead modules: {readable}/{vars} variables readable, {lost} unreachable",
            dead.iter().filter(|&&x| x).count()
        );
        if wave < 3 {
            // Kill two more modules (deterministically).
            for _ in 0..2 {
                let k = (0..modules).find(|&k| !dead[k]).unwrap();
                dead[k] = true;
            }
        }
    }

    println!(
        "\nWith d−b = {margin} spare shares per block and quorum (d+b)/2, any\n\
         (d−b)/2 = {tol} failures are invisible; beyond that, only blocks whose\n\
         shares landed on dead modules drop out — graceful, not catastrophic.",
        margin = d - b,
        tol = (d - b) / 2
    );
}
